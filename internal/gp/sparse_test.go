package gp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// transferSet builds correlated source/target datasets over [0,1]^dim, the
// shape the paper's tuning campaigns produce.
func transferSet(rng *rand.Rand, ns, nt, dim int) (xs [][]float64, ys []float64, xt [][]float64, yt []float64) {
	f := func(x []float64, shift float64) float64 {
		s := shift
		for k, v := range x {
			s += math.Sin(3*v+float64(k)) + 0.3*v*v
		}
		return s
	}
	mk := func(n int, shift float64) ([][]float64, []float64) {
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			xi := make([]float64, dim)
			for k := range xi {
				xi[k] = rng.Float64()
			}
			x[i] = xi
			y[i] = f(xi, shift) + 0.01*rng.NormFloat64()
		}
		return x, y
	}
	xs, ys = mk(ns, 0)
	xt, yt = mk(nt, 0.4)
	return
}

// TestSparseMatchesExactWhenSaturated: with the inducing budget covering the
// whole training set, the DTC posterior degenerates to the exact GP (up to
// the 1e-8 jitter), so predictions must agree closely.
func TestSparseMatchesExactWhenSaturated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs, ys, xt, yt := transferSet(rng, 25, 20, 3)

	exact := New(Matern52, 3, true)
	sparse := NewSparse(Matern52, 3, true, 100, 9)
	for _, m := range []Model{exact, sparse} {
		if err := m.SetSource(xs, ys); err != nil {
			t.Fatal(err)
		}
		if err := m.SetTarget(xt, yt); err != nil {
			t.Fatal(err)
		}
		if err := m.Rebuild(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sparse.NInducing(); got != 45 {
		t.Fatalf("NInducing = %d, want all 45 training points", got)
	}
	for i := 0; i < 40; i++ {
		xq := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		muE, sdE := exact.Predict(xq)
		muS, sdS := sparse.Predict(xq)
		if math.Abs(muE-muS) > 1e-4*(1+math.Abs(muE)) {
			t.Errorf("query %d: mean exact %g sparse %g", i, muE, muS)
		}
		if math.Abs(sdE-sdS) > 1e-3*(1+sdE) {
			t.Errorf("query %d: sd exact %g sparse %g", i, sdE, sdS)
		}
	}
	// The NLML surfaces must agree too (same hypers, saturated budget).
	if e, s := exact.NLML(), sparse.NLML(); math.Abs(e-s) > 1e-2*(1+math.Abs(e)) {
		t.Errorf("NLML exact %g sparse %g", e, s)
	}
}

// TestSparseApproximatesExact: with m < n the sparse posterior mean should
// still track the exact GP over the data region.
func TestSparseApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs, ys, xt, yt := transferSet(rng, 120, 90, 3)

	exact := New(Matern52, 3, true)
	sparse := NewSparse(Matern52, 3, true, 48, 17)
	for _, m := range []Model{exact, sparse} {
		if err := m.SetSource(xs, ys); err != nil {
			t.Fatal(err)
		}
		if err := m.SetTarget(xt, yt); err != nil {
			t.Fatal(err)
		}
		if err := m.Rebuild(); err != nil {
			t.Fatal(err)
		}
	}
	var num, den float64
	for i := 0; i < 80; i++ {
		xq := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		muE, _ := exact.Predict(xq)
		muS, _ := sparse.Predict(xq)
		d := muE - muS
		num += d * d
		den += muE * muE
	}
	if rel := math.Sqrt(num / den); rel > 0.05 {
		t.Errorf("relative mean error %.3f, want < 0.05", rel)
	}
}

// TestSparseAddTargetIncrementalMatchesRebuild: once the budget is saturated
// the Sherman–Morrison fast path must produce the same pool posterior as a
// from-scratch accumulation with the same inducing set and standardisation.
func TestSparseAddTargetIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs, ys, xt, yt := transferSet(rng, 80, 60, 3)
	pool := make([][]float64, 40)
	for i := range pool {
		pool[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}

	inc := NewSparse(Matern52, 3, true, 32, 5)
	if err := inc.SetSource(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := inc.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	if err := inc.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := inc.AttachPool(pool); err != nil {
		t.Fatal(err)
	}
	// Reference model gets the same data pre-appended, then copies inc's
	// standardisation and inducing state by rebuilding with identical inputs.
	added := make([][]float64, 6)
	addY := make([]float64, 6)
	for i := range added {
		added[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		addY[i] = math.Sin(3*added[i][0]) + 0.4
		if err := inc.AddTarget(added[i], addY[i]); err != nil {
			t.Fatal(err)
		}
	}
	// inc standardisation constants are frozen at the last Rebuild; replay
	// the same sequence through a fresh model whose saturation point matches,
	// then compare against an explicit final Rebuild of a third model only
	// for the mean (standardisation drifts are expected to be tiny here).
	ref := NewSparse(Matern52, 3, true, 32, 5)
	if err := ref.SetSource(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := ref.SetTarget(append(append([][]float64{}, xt...), added...), append(append([]float64{}, yt...), addY...)); err != nil {
		t.Fatal(err)
	}
	if err := ref.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := ref.AttachPool(pool); err != nil {
		t.Fatal(err)
	}
	for p := range pool {
		muI, sdI := inc.PredictPool(p)
		muR, sdR := ref.PredictPool(p)
		// Incremental updates keep the inducing set and standardisation of
		// the last rebuild, so agreement is approximate, not bitwise.
		if math.Abs(muI-muR) > 0.05*(1+math.Abs(muR)) {
			t.Errorf("pool %d: mean incremental %g rebuild %g", p, muI, muR)
		}
		if math.Abs(sdI-sdR) > 0.1*(1+sdR) {
			t.Errorf("pool %d: sd incremental %g rebuild %g", p, muI, sdR)
			_ = sdI
		}
	}
}

// TestSparseAddTargetGrowsInducingSetWhileUnsaturated: below the budget every
// add rebuilds, so the new point becomes a candidate inducing point and the
// approximation stays exact.
func TestSparseAddTargetGrowsInducingSetWhileUnsaturated(t *testing.T) {
	s := NewSparse(Matern52, 2, true, 16, 3)
	if err := s.SetTarget([][]float64{{0.1, 0.2}, {0.8, 0.4}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 6; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := s.AddTarget(x, rng.Float64()); err != nil {
			t.Fatal(err)
		}
		if got, want := s.NInducing(), s.NTarget(); got != want {
			t.Fatalf("after add %d: NInducing = %d, want %d (unsaturated adds rebuild)", i, got, want)
		}
		// Unsaturated DTC is exact: training points must be interpolated
		// tightly relative to prior uncertainty.
		mu, _ := s.Predict(x)
		if math.IsNaN(mu) {
			t.Fatalf("NaN prediction after add %d", i)
		}
	}
}

// TestSparseDeterministic: identical construction and data must give
// bit-identical predictions, for any worker count.
func TestSparseDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xs, ys, xt, yt := transferSet(rng, 50, 40, 3)
	pool := make([][]float64, 25)
	for i := range pool {
		pool[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	build := func(workers int) []float64 {
		s := NewSparse(Matern52, 3, true, 24, 21)
		s.SetWorkers(workers)
		if err := s.SetSource(xs, ys); err != nil {
			t.Fatal(err)
		}
		if err := s.SetTarget(xt, yt); err != nil {
			t.Fatal(err)
		}
		if err := s.Fit(FitOptions{MaxEvals: 60}); err != nil {
			t.Fatal(err)
		}
		if err := s.AttachPool(pool); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, 2*len(pool))
		for p := range pool {
			mu, sd := s.PredictPool(p)
			out = append(out, mu, sd)
		}
		return out
	}
	a := build(1)
	for _, w := range []int{2, 7} {
		b := build(w)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("workers=%d: prediction %d differs bitwise: %v vs %v", w, i, a[i], b[i])
			}
		}
	}
}

// TestSparseSeedChangesSelection: different selection seeds start the
// farthest-point walk elsewhere, which must show up in the inducing indices.
func TestSparseSeedChangesSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xt := make([][]float64, 60)
	yt := make([]float64, 60)
	for i := range xt {
		xt[i] = []float64{rng.Float64(), rng.Float64()}
		yt[i] = rng.Float64()
	}
	idx := func(seed uint64) []int {
		s := NewSparse(Matern52, 2, true, 12, seed)
		if err := s.SetTarget(xt, yt); err != nil {
			t.Fatal(err)
		}
		if err := s.Rebuild(); err != nil {
			t.Fatal(err)
		}
		return s.InducingIdx()
	}
	a, b := idx(1), idx(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 selected identical inducing sets (expected different walks)")
	}
}

// TestSparseFitImprovesNLML: Fit must not end on worse hyper-parameters than
// it started with.
func TestSparseFitImprovesNLML(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs, ys, xt, yt := transferSet(rng, 60, 50, 3)
	s := NewSparse(Matern52, 3, true, 32, 13)
	if err := s.SetSource(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	before := s.NLML()
	if err := s.Fit(FitOptions{MaxEvals: 150}); err != nil {
		t.Fatal(err)
	}
	after := s.NLML()
	if after > before+1e-6 {
		t.Errorf("Fit worsened NLML: before %g after %g", before, after)
	}
	// Fitted model should regress the target function decently.
	var mse float64
	const nq = 40
	for i := 0; i < nq; i++ {
		xq := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		want := 0.4
		for k, v := range xq {
			want += math.Sin(3*v+float64(k)) + 0.3*v*v
		}
		mu, _ := s.Predict(xq)
		d := mu - want
		mse += d * d
	}
	mse /= nq
	if mse > 0.05 {
		t.Errorf("post-fit MSE %g, want < 0.05", mse)
	}
}

// TestSparseRhoCarriedOver: with a strongly correlated source the fitted ρ
// must be meaningfully positive and shared across the cross blocks, improving
// predictions versus ignoring the source entirely.
func TestSparseRhoCarriedOver(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	xs, ys, xt, yt := transferSet(rng, 100, 12, 2)
	s := NewSparse(Matern52, 2, true, 48, 19)
	if err := s.SetSource(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	if err := s.Fit(FitOptions{MaxEvals: 200}); err != nil {
		t.Fatal(err)
	}
	if rho := s.Rho(); rho < 0.2 {
		t.Errorf("fitted rho = %g, want clearly positive for a correlated source", rho)
	}
	if math.Abs(s.Rho()-TransferFactor(s.a, s.b)) > 1e-12 {
		t.Error("Rho() disagrees with TransferFactor(a, b)")
	}
}

// TestSparseSpeedup is the wall-clock acceptance sanity check: at n≈1000 a
// sparse:64 refit must be several times faster than the exact solver. The
// formal ≥5× bar is enforced on the recorded gpbench numbers; this test uses
// a lenient 2.5× so CI machines with noisy clocks do not flake.
func TestSparseSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rng := rand.New(rand.NewSource(15))
	xs, ys, xt, yt := transferSet(rng, 500, 500, 8)
	run := func(m Model) time.Duration {
		if err := m.SetSource(xs, ys); err != nil {
			t.Fatal(err)
		}
		if err := m.SetTarget(xt, yt); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := m.Fit(FitOptions{MaxEvals: 40}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	exact := run(New(Matern52, 8, true))
	sparse := run(NewSparse(Matern52, 8, true, 64, 23))
	t.Logf("exact fit %v, sparse:64 fit %v (%.1fx)", exact, sparse, float64(exact)/float64(sparse))
	if float64(exact) < 2.5*float64(sparse) {
		t.Errorf("sparse fit %v not >= 2.5x faster than exact %v", sparse, exact)
	}
}

// --- SelectInducing (satellite: direct unit tests) ---

func TestSelectInducingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := make([][]float64, 40)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	lens := []float64{0.5, 1.0, 2.0}
	a, err := SelectInducing(x, lens, 10, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectInducing(x, lens, 10, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection not deterministic: %v vs %v", a, b)
		}
	}
	if a[0] != 77%40 {
		t.Errorf("walk started at %d, want seed %% n = %d", a[0], 77%40)
	}
	seen := map[int]bool{}
	for _, i := range a {
		if seen[i] {
			t.Fatalf("duplicate index %d in %v", i, a)
		}
		seen[i] = true
	}
}

// TestSelectInducingFarthestPoint verifies the greedy max-min property on a
// hand-built 1-D set: from the start, each pick is the point farthest from
// everything already selected.
func TestSelectInducingFarthestPoint(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}, {10}}
	idx, err := SelectInducing(x, []float64{1}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Start at 0 (seed 0), farthest is 10 (index 4), then the point farthest
	// from {0, 10} is 3 (index 3, min-dist 9) over 2 (min-dist 4).
	want := []int{0, 4, 3}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("selection order %v, want %v", idx, want)
		}
	}
}

// TestSelectInducingTiesPickLowestIndex: equidistant candidates resolve to
// the lowest index, keeping selection platform-independent.
func TestSelectInducingTiesPickLowestIndex(t *testing.T) {
	x := [][]float64{{0}, {1}, {-1}, {1}}
	idx, err := SelectInducing(x, []float64{1}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx[1] != 1 {
		t.Errorf("tie broke to index %d, want lowest index 1 among {1, 2, 3}", idx[1])
	}
}

func TestSelectInducingARDMetric(t *testing.T) {
	// With a tiny lengthscale on dim 1, separation along dim 1 dominates:
	// the second pick must be the dim-1 outlier, not the dim-0 outlier.
	x := [][]float64{{0, 0}, {5, 0}, {0, 1}}
	idx, err := SelectInducing(x, []float64{10, 0.1}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx[1] != 2 {
		t.Errorf("ARD metric ignored: picked %d, want 2", idx[1])
	}
}

func TestSelectInducingErrors(t *testing.T) {
	x := [][]float64{{0, 0}, {1, 1}}
	if _, err := SelectInducing(nil, []float64{1}, 1, 0); err == nil {
		t.Error("want error on empty point set")
	}
	if _, err := SelectInducing(x, []float64{1}, 0, 0); err == nil {
		t.Error("want error on m = 0")
	}
	if _, err := SelectInducing(x, []float64{1}, 3, 0); err == nil {
		t.Error("want error on m > n")
	}
	if _, err := SelectInducing(x, []float64{1, 2, 3}, 1, 0); err == nil {
		t.Error("want error on lengthscale count mismatch")
	}
}

// --- Spec / ParseSpec ---

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		ok   bool
	}{
		{"", Spec{}, true},
		{"exact", Spec{}, true},
		{"sparse", Spec{Sparse: true, M: DefaultSparseM}, true},
		{"sparse:16", Spec{Sparse: true, M: 16}, true},
		{"sparse:1", Spec{Sparse: true, M: 1}, true},
		{"sparse:0", Spec{}, false},
		{"sparse:-3", Spec{}, false},
		{"sparse:x", Spec{}, false},
		{"dense", Spec{}, false},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseSpec(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestSpecString(t *testing.T) {
	if got := (Spec{}).String(); got != "exact" {
		t.Errorf("exact spec renders %q", got)
	}
	if got := (Spec{Sparse: true}).String(); got != "sparse:64" {
		t.Errorf("default sparse spec renders %q", got)
	}
	if got := (Spec{Sparse: true, M: 12}).String(); got != "sparse:12" {
		t.Errorf("sparse:12 spec renders %q", got)
	}
}

func TestSpecNew(t *testing.T) {
	if _, ok := (Spec{}).New(Matern52, 3, true).(*GP); !ok {
		t.Error("exact spec did not build *GP")
	}
	m, ok := (Spec{Sparse: true, M: 7, Seed: 3}).New(Matern52, 3, true).(*SparseGP)
	if !ok {
		t.Fatal("sparse spec did not build *SparseGP")
	}
	if m.m != 7 || m.seed != 3 {
		t.Errorf("sparse spec budget/seed = %d/%d, want 7/3", m.m, m.seed)
	}
}

// --- subsampled (satellite: direct unit tests for the exact GP's Fit helper) ---

func TestSubsampledDeterministicAndStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	xs, ys, xt, yt := transferSet(rng, 40, 20, 2)
	g := New(Matern52, 2, true)
	if err := g.SetSource(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	sub := g.subsampled(30)
	sub2 := g.subsampled(30)
	if sub.N() != 30 {
		t.Fatalf("subsampled to %d points, want 30", sub.N())
	}
	// Proportional split: 30·40/60 = 20 source points.
	if len(sub.xs) != 20 || len(sub.xt) != 10 {
		t.Errorf("split %d/%d, want 20/10", len(sub.xs), len(sub.xt))
	}
	for i := range sub.xs {
		if &sub.xs[i][0] != &sub2.xs[i][0] {
			t.Fatal("subsampling is not deterministic (different source rows picked)")
		}
	}
	// Stride subsampling picks views into the parent data, never copies.
	for _, row := range sub.xs {
		found := false
		for _, orig := range xs {
			if &row[0] == &orig[0] {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("subsampled source row is not a view into the parent dataset")
		}
	}
	if sub.cov != g.cov {
		t.Error("subsampled GP must share the parent covariance (Fit mutates it in place)")
	}
	if sub.a != g.a || sub.b != g.b || sub.noiseT != g.noiseT || sub.noiseS != g.noiseS {
		t.Error("subsampled GP did not inherit transfer/noise hyper-parameters")
	}
}

func TestSubsampledKeepsSourceTaskPresence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	xs, ys, xt, yt := transferSet(rng, 3, 200, 2)
	g := New(Matern52, 2, true)
	if err := g.SetSource(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	sub := g.subsampled(40)
	if len(sub.xs) < 1 {
		t.Fatal("subsampling dropped the source task entirely; packed hyper layout would change")
	}
	if !sub.hasSource {
		t.Error("hasSource lost in subsample")
	}
}

func TestSubsampledNoopWhenSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	xt, yt := trainSet(rng, 10, fTest)
	g := New(Matern52, 2, true)
	if err := g.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	if sub := g.subsampled(50); sub != g {
		t.Error("subsampled(n >= N) must return the receiver unchanged")
	}
	if sub := g.subsampled(0); sub != g {
		t.Error("subsampled(0) must return the receiver unchanged")
	}
}
