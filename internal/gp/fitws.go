package gp

import (
	"math"

	"ppatuner/internal/mat"
	"ppatuner/internal/simd"
)

// fitWS is the scratch space behind the Nelder–Mead NLML loop in Fit. The
// training inputs are fixed for the duration of a Fit call, so everything
// about them that the hyper-parameters cannot change is computed once here:
// the per-dimension pairwise squared differences (ARD) or the raw squared
// distances (isotropic), and the standardised outputs. Each NLML evaluation
// is then only a scalar transform of the cached distances plus one packed
// factorisation, with the Gram, Cholesky and solve buffers reused across all
// evaluations — the hot loop allocates nothing.
type fitWS struct {
	n, ns, d int
	ard      bool
	// sqd is the pair-major squared-difference tensor (ARD path):
	// sqd[p*d+k] = (x_i[k]-x_j[k])² for packed pair p = (i,j), j ≤ i.
	sqd []float64
	// r2raw is the unscaled squared distance per packed pair (isotropic path).
	r2raw []float64
	y     []float64 // outputs standardised per task, training order
	gram  []float64 // packed Gram workspace, rewritten every evaluation
	inv2  []float64 // per-dimension 1/ℓ² for the current hyper-parameters
	alpha []float64
	chol  mat.Cholesky
}

const log2pi = 1.8378770664093453 // log(2π)

// newFitWS caches the hyper-parameter-independent parts of g's training set.
// The outputs are standardised with g's current per-task constants, so call
// standardise first.
func newFitWS(g *GP) *fitWS {
	n := g.N()
	w := &fitWS{n: n, ns: len(g.xs), d: g.dim, ard: len(g.cov.Len) > 1}
	np := mat.PackedLen(n)
	if w.ard {
		w.sqd = make([]float64, np*w.d)
		idx := 0
		for i := 0; i < n; i++ {
			xi, _ := g.trainX(i)
			for j := 0; j <= i; j++ {
				xj, _ := g.trainX(j)
				for k := 0; k < w.d; k++ {
					dk := xi[k] - xj[k]
					w.sqd[idx] = dk * dk
					idx++
				}
			}
		}
	} else {
		w.r2raw = make([]float64, np)
		p := 0
		for i := 0; i < n; i++ {
			xi, _ := g.trainX(i)
			for j := 0; j <= i; j++ {
				xj, _ := g.trainX(j)
				var s float64
				for k := range xi {
					dk := xi[k] - xj[k]
					s += dk * dk
				}
				w.r2raw[p] = s
				p++
			}
		}
	}
	w.y = g.yStdInto(nil)
	w.gram = make([]float64, np)
	w.inv2 = make([]float64, w.d)
	w.alpha = make([]float64, n)
	return w
}

// fillGram rebuilds the packed noisy Gram matrix K̃ + Λ for g's current
// hyper-parameters from the cached distances. It matches (*GP).gram entry
// for entry up to the ulp-level difference of accumulating Σ d²·(1/ℓ²)
// instead of Σ (d/ℓ)².
//
//ppalint:noalloc
func (w *fitWS) fillGram(g *GP) {
	np := mat.PackedLen(w.n)
	gm := w.gram
	vr := g.cov.Var
	if w.ard {
		inv2 := w.inv2
		for k, l := range g.cov.Len {
			inv2[k] = 1 / (l * l)
		}
		d := w.d
		sq := w.sqd
		switch g.cov.Kind {
		case Matern52:
			// One fused pass: the kernel scales each row of cached squared
			// differences by 1/ℓ² and applies the distance→covariance
			// transform without a second sweep over the Gram buffer. The
			// paper's 8-dimensional tuning space hits the asm fast path.
			simd.Matern52ARD(gm[:np], sq, inv2, vr)
		default:
			for p := 0; p < np; p++ {
				row := sq[p*d : p*d+d : p*d+d]
				var r2 float64
				for k := 0; k < d; k++ {
					r2 += row[k] * inv2[k]
				}
				gm[p] = g.cov.EvalR2(r2)
			}
		}
	} else {
		inv2 := 1 / (g.cov.Len[0] * g.cov.Len[0])
		switch g.cov.Kind {
		case Matern52:
			for p, s := range w.r2raw {
				gm[p] = s * inv2
			}
			simd.Matern52FromR2(gm[:np], vr)
		default:
			for p, s := range w.r2raw {
				gm[p] = g.cov.EvalR2(s * inv2)
			}
		}
	}
	// Scale the cross-task block (target rows × source columns) by ρ. The
	// block is contiguous per row in packed layout, and hoisting ρ here keeps
	// TransferFactor's math.Pow out of the per-pair loop entirely.
	if g.hasSource {
		if rho := TransferFactor(g.a, g.b); rho != 1 {
			for i := w.ns; i < w.n; i++ {
				off := mat.PackedLen(i)
				seg := gm[off : off+w.ns]
				for k := range seg {
					seg[k] *= rho
				}
			}
		}
	}
	// Heteroscedastic task noise plus the fixed numerical jitter on the
	// diagonal (the kernel's own diagonal value is exactly Var).
	for i := 0; i < w.n; i++ {
		di := mat.PackedLen(i) + i
		if i < w.ns {
			gm[di] += g.noiseS + 1e-8
		} else {
			gm[di] += g.noiseT + 1e-8
		}
	}
}

// nlml evaluates the negative log marginal likelihood of the cached data
// under g's current hyper-parameters, reusing all workspace buffers. It
// applies the same jitter-retry ladder as the non-workspace path and returns
// +Inf when the Gram matrix is not positive definite even with jitter.
//
//ppalint:noalloc
func (w *fitWS) nlml(g *GP) float64 {
	w.fillGram(g)
	if err := w.chol.FactorizePacked(w.gram, w.n, 1e-8, 6); err != nil {
		return math.Inf(1)
	}
	w.chol.SolveInto(w.alpha, w.y)
	return 0.5*mat.Dot(w.y, w.alpha) + 0.5*w.chol.LogDet() + 0.5*float64(w.n)*log2pi
}
