package gp

import (
	"math"
	"sort"
)

// NelderMead minimises f over R^n starting from x0, using the standard
// downhill-simplex method with adaptive coefficients. maxEvals bounds the
// number of objective evaluations. It returns the best point and value
// found. Objective values of NaN are treated as +Inf (e.g. a failed Cholesky
// inside a marginal-likelihood evaluation).
func NelderMead(f func([]float64) float64, x0 []float64, step float64, maxEvals int) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	eval := func(x []float64) float64 {
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	type vertex struct {
		x []float64
		v float64
	}
	simplex := make([]vertex, n+1)
	evals := 0
	mk := func(x []float64) vertex {
		evals++
		return vertex{x: x, v: eval(x)}
	}
	simplex[0] = mk(append([]float64(nil), x0...))
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		x[i] += step
		simplex[i+1] = mk(x)
	}

	// Adaptive coefficients (Gao & Han) behave better in higher dimensions.
	nf := float64(n)
	alpha := 1.0
	beta := 1.0 + 2.0/nf
	gamma := 0.75 - 1.0/(2.0*nf)
	delta := 1.0 - 1.0/nf

	for evals < maxEvals {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
		best, worst := simplex[0], simplex[n]
		if worst.v-best.v < 1e-10*(1+math.Abs(best.v)) {
			break
		}
		// Centroid of all but the worst vertex.
		cen := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				cen[j] += simplex[i].x[j]
			}
		}
		for j := range cen {
			cen[j] /= nf
		}
		lerp := func(t float64) []float64 {
			x := make([]float64, n)
			for j := range x {
				x[j] = cen[j] + t*(cen[j]-worst.x[j])
			}
			return x
		}
		refl := mk(lerp(alpha))
		switch {
		case refl.v < best.v:
			if exp := mk(lerp(alpha * beta)); exp.v < refl.v {
				simplex[n] = exp
			} else {
				simplex[n] = refl
			}
		case refl.v < simplex[n-1].v:
			simplex[n] = refl
		default:
			var con vertex
			if refl.v < worst.v {
				con = mk(lerp(alpha * gamma)) // outside contraction
			} else {
				con = mk(lerp(-gamma)) // inside contraction
			}
			if con.v < math.Min(refl.v, worst.v) {
				simplex[n] = con
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					x := make([]float64, n)
					for j := range x {
						x[j] = best.x[j] + delta*(simplex[i].x[j]-best.x[j])
					}
					simplex[i] = mk(x)
					if evals >= maxEvals {
						break
					}
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
	return simplex[0].x, simplex[0].v
}
