package gp

import (
	"math"
	"math/rand"
	"testing"

	"ppatuner/internal/mat"
)

// target function used across regression tests.
func fTest(x []float64) float64 {
	return math.Sin(3*x[0]) + 0.5*x[1]*x[1]
}

func trainSet(rng *rand.Rand, n int, f func([]float64) float64) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = f(xs[i])
	}
	return xs, ys
}

func TestGPInterpolatesTrainingData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := trainSet(rng, 30, fTest)
	g := New(RBF, 2, false)
	if err := g.SetTarget(x, y); err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(FitOptions{MaxEvals: 150}); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mu, sd := g.Predict(x[i])
		if math.Abs(mu-y[i]) > 0.05 {
			t.Errorf("training point %d: mu = %g, want %g", i, mu, y[i])
		}
		if sd > 0.2 {
			t.Errorf("training point %d: sd = %g, want small", i, sd)
		}
	}
}

func TestGPGeneralises(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := trainSet(rng, 60, fTest)
	g := New(Matern52, 2, true)
	if err := g.SetTarget(x, y); err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(FitOptions{MaxEvals: 200}); err != nil {
		t.Fatal(err)
	}
	var mse float64
	const m = 50
	for i := 0; i < m; i++ {
		xq := []float64{rng.Float64(), rng.Float64()}
		mu, _ := g.Predict(xq)
		d := mu - fTest(xq)
		mse += d * d
	}
	mse /= m
	if mse > 0.01 {
		t.Errorf("test MSE = %g, want < 0.01", mse)
	}
}

func TestGPUncertaintyGrowsAwayFromData(t *testing.T) {
	g := New(RBF, 1, false)
	if err := g.SetTarget([][]float64{{0.5}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Rebuild(); err != nil {
		t.Fatal(err)
	}
	_, sdNear := g.Predict([]float64{0.5})
	_, sdFar := g.Predict([]float64{5})
	if !(sdFar > sdNear) {
		t.Errorf("sd near = %g, sd far = %g; want far > near", sdNear, sdFar)
	}
}

func TestGPFitImprovesNLML(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := trainSet(rng, 40, fTest)
	g := New(RBF, 2, false)
	if err := g.SetTarget(x, y); err != nil {
		t.Fatal(err)
	}
	g.standardise()
	before := g.NLML()
	if err := g.Fit(FitOptions{MaxEvals: 150}); err != nil {
		t.Fatal(err)
	}
	after := g.NLML()
	if !(after <= before+1e-9) {
		t.Errorf("NLML after fit %g > before %g", after, before)
	}
}

// TestGPAddTargetMatchesRebuild: incremental posterior updates must agree
// with a from-scratch rebuild.
func TestGPAddTargetMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := trainSet(rng, 20, fTest)
	xNew, yNew := trainSet(rng, 5, fTest)
	queries, _ := trainSet(rng, 10, fTest)

	inc := New(RBF, 2, false)
	if err := inc.SetTarget(x, y); err != nil {
		t.Fatal(err)
	}
	if err := inc.Rebuild(); err != nil {
		t.Fatal(err)
	}
	for i := range xNew {
		if err := inc.AddTarget(xNew[i], yNew[i]); err != nil {
			t.Fatal(err)
		}
	}

	full := New(RBF, 2, false)
	if err := full.SetTarget(append(append([][]float64{}, x...), xNew...), append(append([]float64{}, y...), yNew...)); err != nil {
		t.Fatal(err)
	}
	// Use the same (default) hyper-parameters and the same standardisation
	// state as the incremental model (white-box: bypass Rebuild's
	// re-standardisation so the two posteriors are over identical data).
	full.yMeanS, full.yStdS = inc.yMeanS, inc.yStdS
	full.yMeanT, full.yStdT = inc.yMeanT, inc.yStdT
	ch, err := mat.CholeskyWithJitter(full.gram(), 1e-8, 8)
	if err != nil {
		t.Fatal(err)
	}
	full.chol = ch
	full.alpha = ch.Solve(full.yStdAll())

	for i, q := range queries {
		mi, si := inc.Predict(q)
		mf, sf := full.Predict(q)
		if math.Abs(mi-mf) > 1e-6 || math.Abs(si-sf) > 1e-6 {
			t.Errorf("query %d: incremental (%g, %g) vs full (%g, %g)", i, mi, si, mf, sf)
		}
	}
}

func TestGPPoolMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := trainSet(rng, 25, fTest)
	pool, _ := trainSet(rng, 40, fTest)
	g := New(RBF, 2, false)
	if err := g.SetTarget(x, y); err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(FitOptions{MaxEvals: 80}); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachPool(pool); err != nil {
		t.Fatal(err)
	}
	for p := range pool {
		mp, sp := g.PredictPool(p)
		mq, sq := g.Predict(pool[p])
		if math.Abs(mp-mq) > 1e-8 || math.Abs(sp-sq) > 1e-8 {
			t.Fatalf("pool %d: (%g, %g) vs Predict (%g, %g)", p, mp, sp, mq, sq)
		}
	}
	// After an incremental add the cached pool must still agree.
	xn, yn := trainSet(rng, 3, fTest)
	for i := range xn {
		if err := g.AddTarget(xn[i], yn[i]); err != nil {
			t.Fatal(err)
		}
	}
	for p := range pool {
		mp, sp := g.PredictPool(p)
		mq, sq := g.Predict(pool[p])
		if math.Abs(mp-mq) > 1e-6 || math.Abs(sp-sq) > 1e-6 {
			t.Fatalf("pool %d after add: (%g, %g) vs Predict (%g, %g)", p, mp, sp, mq, sq)
		}
	}
}

// TestTransferGPHelps: with very few target observations of a shifted copy
// of the source function, the transfer GP must beat a target-only GP.
func TestTransferGPHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fSrc := func(x []float64) float64 { return math.Sin(4*x[0]) + x[1] }
	fTgt := func(x []float64) float64 { return math.Sin(4*x[0]) + x[1] + 0.1 }

	xs, ys := trainSet(rng, 80, fSrc)
	xt, yt := trainSet(rng, 5, fTgt)

	transfer := New(RBF, 2, false)
	if err := transfer.SetSource(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := transfer.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	if err := transfer.Fit(FitOptions{MaxEvals: 200}); err != nil {
		t.Fatal(err)
	}

	plain := New(RBF, 2, false)
	if err := plain.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	if err := plain.Fit(FitOptions{MaxEvals: 200}); err != nil {
		t.Fatal(err)
	}

	var mseT, mseP float64
	const m = 60
	for i := 0; i < m; i++ {
		xq := []float64{rng.Float64(), rng.Float64()}
		want := fTgt(xq)
		mt, _ := transfer.Predict(xq)
		mp, _ := plain.Predict(xq)
		mseT += (mt - want) * (mt - want)
		mseP += (mp - want) * (mp - want)
	}
	if !(mseT < mseP) {
		t.Errorf("transfer MSE %g !< plain MSE %g", mseT/m, mseP/m)
	}
	// Similar tasks: the learned cross-task correlation should be high.
	if transfer.Rho() < 0.5 {
		t.Errorf("learned rho = %g, want > 0.5 for near-identical tasks", transfer.Rho())
	}
}

// TestTransferGPDissimilarTasks: when the source task is anti-correlated
// with the target, the learned rho must drop well below the similar-task
// value (the kernel "measures both positive and negative correlations").
func TestTransferGPDissimilarTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fSrc := func(x []float64) float64 { return -math.Sin(4*x[0]) - x[1] }
	fTgt := func(x []float64) float64 { return math.Sin(4*x[0]) + x[1] }

	xs, ys := trainSet(rng, 80, fSrc)
	xt, yt := trainSet(rng, 15, fTgt)

	g := New(RBF, 2, false)
	if err := g.SetSource(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(FitOptions{MaxEvals: 250}); err != nil {
		t.Fatal(err)
	}
	if g.Rho() > 0.5 {
		t.Errorf("anti-correlated tasks: learned rho = %g, want low/negative", g.Rho())
	}
}

func TestGPRhoWithoutSource(t *testing.T) {
	g := New(RBF, 2, false)
	if g.Rho() != 1 {
		t.Errorf("Rho without source = %g, want 1", g.Rho())
	}
}

func TestGPFixTransfer(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs, ys := trainSet(rng, 20, fTest)
	xt, yt := trainSet(rng, 5, fTest)
	g := New(RBF, 2, false)
	if err := g.SetSource(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	g.a, g.b = 0.33, 1.25
	if err := g.Fit(FitOptions{MaxEvals: 60, FixTransfer: true}); err != nil {
		t.Fatal(err)
	}
	if g.a != 0.33 || g.b != 1.25 {
		t.Errorf("FixTransfer changed (a, b) to (%g, %g)", g.a, g.b)
	}
}

func TestGPErrors(t *testing.T) {
	g := New(RBF, 2, false)
	if err := g.Fit(FitOptions{}); err == nil {
		t.Error("Fit with no data succeeded")
	}
	if err := g.Rebuild(); err == nil {
		t.Error("Rebuild with no data succeeded")
	}
	if err := g.SetTarget([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("mismatched target lengths accepted")
	}
	if err := g.SetSource([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("wrong source dim accepted")
	}
	if err := g.AttachPool(nil); err == nil {
		t.Error("AttachPool before Rebuild succeeded")
	}
	if err := g.SetTarget([][]float64{{0.1, 0.2}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachPool([][]float64{{1}}); err == nil {
		t.Error("pool with wrong dim accepted")
	}
	if err := g.AddTarget([]float64{1}, 0); err == nil {
		t.Error("AddTarget with wrong dim accepted")
	}
}

func TestGPAddTargetDuplicatePointSurvives(t *testing.T) {
	g := New(RBF, 2, false)
	if err := g.SetTarget([][]float64{{0.5, 0.5}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Rebuild(); err != nil {
		t.Fatal(err)
	}
	// Adding the identical point twice must not corrupt the posterior.
	for i := 0; i < 2; i++ {
		if err := g.AddTarget([]float64{0.5, 0.5}, 1); err != nil {
			t.Fatalf("duplicate add %d: %v", i, err)
		}
	}
	mu, sd := g.Predict([]float64{0.5, 0.5})
	if math.IsNaN(mu) || math.IsNaN(sd) {
		t.Fatal("NaN prediction after duplicate adds")
	}
	if math.Abs(mu-1) > 0.05 {
		t.Errorf("mu = %g, want ~1", mu)
	}
}

func TestGPCounts(t *testing.T) {
	g := New(RBF, 1, false)
	if err := g.SetSource([][]float64{{0.1}, {0.2}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTarget([][]float64{{0.3}}, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.NTarget() != 1 {
		t.Errorf("N = %d, NTarget = %d; want 3, 1", g.N(), g.NTarget())
	}
	if err := g.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := g.AddTarget([]float64{0.4}, 4); err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.NTarget() != 2 {
		t.Errorf("after add: N = %d, NTarget = %d; want 4, 2", g.N(), g.NTarget())
	}
}
