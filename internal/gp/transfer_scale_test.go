package gp

import (
	"math"
	"math/rand"
	"testing"
)

// TestTransferSurvivesTaskScaleGap: per-task standardisation must keep the
// learned correlation high even when the source task's outputs live on a
// completely different scale (a 3× larger design burning 3× the power), as
// long as the response *shape* matches.
func TestTransferSurvivesTaskScaleGap(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shape := func(x []float64) float64 { return math.Sin(4*x[0]) + x[1]*x[1] }
	fSrc := func(x []float64) float64 { return 0.4*shape(x) + 0.5 } // small design
	fTgt := func(x []float64) float64 { return 1.3*shape(x) + 2.0 } // large design

	xs, ys := trainSet(rng, 90, fSrc)
	xt, yt := trainSet(rng, 6, fTgt)

	g := New(RBF, 2, false)
	if err := g.SetSource(xs, ys); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(FitOptions{MaxEvals: 240}); err != nil {
		t.Fatal(err)
	}
	if g.Rho() < 0.5 {
		t.Errorf("scale gap destroyed transfer: rho = %g, want > 0.5", g.Rho())
	}

	// Predictions must come back in *target* units.
	plain := New(RBF, 2, false)
	if err := plain.SetTarget(xt, yt); err != nil {
		t.Fatal(err)
	}
	if err := plain.Fit(FitOptions{MaxEvals: 240}); err != nil {
		t.Fatal(err)
	}
	var mseT, mseP float64
	const m = 60
	for i := 0; i < m; i++ {
		xq := []float64{rng.Float64(), rng.Float64()}
		want := fTgt(xq)
		mt, _ := g.Predict(xq)
		mp, _ := plain.Predict(xq)
		mseT += (mt - want) * (mt - want)
		mseP += (mp - want) * (mp - want)
	}
	if !(mseT < mseP) {
		t.Errorf("transfer MSE %g !< plain MSE %g despite matching shapes", mseT/m, mseP/m)
	}
}

// TestPerTaskStandardisationConstants: the source and target constants are
// computed from their own task's data.
func TestPerTaskStandardisationConstants(t *testing.T) {
	g := New(RBF, 1, false)
	if err := g.SetSource([][]float64{{0.1}, {0.2}, {0.3}, {0.4}, {0.5}}, []float64{10, 12, 14, 16, 18}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTarget([][]float64{{0.1}, {0.2}, {0.3}, {0.4}, {0.5}}, []float64{100, 102, 104, 106, 108}); err != nil {
		t.Fatal(err)
	}
	g.standardise()
	if math.Abs(g.yMeanS-14) > 1e-12 {
		t.Errorf("source mean = %g, want 14", g.yMeanS)
	}
	if math.Abs(g.yMeanT-104) > 1e-12 {
		t.Errorf("target mean = %g, want 104", g.yMeanT)
	}
	if g.yStdS <= 0 || g.yStdT <= 0 {
		t.Error("non-positive std")
	}
}

// TestTargetScaleBorrowedWhenScarce: with fewer than 4 target points the
// target std falls back to the source's.
func TestTargetScaleBorrowedWhenScarce(t *testing.T) {
	g := New(RBF, 1, false)
	if err := g.SetSource([][]float64{{0.1}, {0.2}, {0.3}, {0.4}}, []float64{1, 3, 5, 7}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTarget([][]float64{{0.5}, {0.6}}, []float64{2, 2.1}); err != nil {
		t.Fatal(err)
	}
	g.standardise()
	if g.yStdT != g.yStdS {
		t.Errorf("target std = %g, want borrowed source std %g", g.yStdT, g.yStdS)
	}
}
