package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCovAtZeroDistance(t *testing.T) {
	for _, kind := range []CovKind{RBF, Matern52} {
		c := NewCov(kind, 3, false)
		c.Var = 2.5
		x := []float64{0.1, 0.5, 0.9}
		if got := c.Eval(x, x); math.Abs(got-2.5) > 1e-12 {
			t.Errorf("%v: k(x,x) = %g, want Var = 2.5", kind, got)
		}
	}
}

func TestCovSymmetryAndDecay(t *testing.T) {
	for _, kind := range []CovKind{RBF, Matern52} {
		c := NewCov(kind, 2, false)
		a, b := []float64{0, 0}, []float64{0.3, 0.4}
		far := []float64{3, 4}
		if c.Eval(a, b) != c.Eval(b, a) {
			t.Errorf("%v: asymmetric", kind)
		}
		if !(c.Eval(a, b) > c.Eval(a, far)) {
			t.Errorf("%v: does not decay with distance", kind)
		}
		if c.Eval(a, far) <= 0 {
			t.Errorf("%v: non-positive covariance", kind)
		}
	}
}

func TestCovARDLengthscales(t *testing.T) {
	c := NewCov(RBF, 2, true)
	c.Len = []float64{0.1, 10}
	// A move along dim 0 (short lengthscale) decorrelates much faster than
	// the same move along dim 1.
	x := []float64{0, 0}
	d0 := c.Eval(x, []float64{0.5, 0})
	d1 := c.Eval(x, []float64{0, 0.5})
	if !(d0 < d1) {
		t.Errorf("ARD: k along short dim %g !< k along long dim %g", d0, d1)
	}
}

func TestCovIsotropicSingleLength(t *testing.T) {
	c := NewCov(RBF, 3, false)
	if len(c.Len) != 1 {
		t.Fatalf("isotropic cov has %d lengthscales, want 1", len(c.Len))
	}
	c.Len[0] = 2
	a, b := []float64{0, 0, 0}, []float64{1, 1, 1}
	want := math.Exp(-0.5 * 3 / 4)
	if got := c.Eval(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("isotropic eval = %g, want %g", got, want)
	}
}

func TestCovDimMismatchPanics(t *testing.T) {
	c := NewCov(RBF, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dim mismatch")
		}
	}()
	c.Eval([]float64{1}, []float64{1, 2})
}

func TestCovHyperRoundTrip(t *testing.T) {
	c := NewCov(Matern52, 4, true)
	c.Var = 3.7
	c.Len = []float64{0.2, 1.5, 2.5, 0.9}
	h := c.hyper()
	d := NewCov(Matern52, 4, true)
	d.setHyper(h)
	if math.Abs(d.Var-c.Var) > 1e-12 {
		t.Errorf("Var round trip: %g vs %g", d.Var, c.Var)
	}
	for i := range c.Len {
		if math.Abs(d.Len[i]-c.Len[i]) > 1e-12 {
			t.Errorf("Len[%d] round trip: %g vs %g", i, d.Len[i], c.Len[i])
		}
	}
}

func TestCovClone(t *testing.T) {
	c := NewCov(RBF, 2, true)
	d := c.Clone()
	d.Len[0] = 42
	if c.Len[0] == 42 {
		t.Error("Clone shares lengthscale storage")
	}
}

// TestTransferFactorMatchesGammaIntegral verifies Eq. (7) against numerical
// integration of Eq. (6): E[2e^{-φ} − 1] with φ ~ Γ(shape b, scale a).
func TestTransferFactorMatchesGammaIntegral(t *testing.T) {
	cases := []struct{ a, b float64 }{
		// b >= 1 keeps the Gamma density bounded at 0 so the plain
		// trapezoid rule below converges.
		{0.1, 1}, {0.5, 2}, {1, 1}, {2, 1.5}, {0.05, 3},
	}
	for _, c := range cases {
		// Numerically integrate the Gamma expectation by fine trapezoid.
		gammaB := math.Gamma(c.b)
		const steps = 400000
		upper := c.a * (c.b + 40) * 3 // generous tail cutoff
		h := upper / steps
		var integral float64
		for i := 1; i < steps; i++ {
			phi := float64(i) * h
			dens := math.Pow(phi, c.b-1) * math.Exp(-phi/c.a) / (math.Pow(c.a, c.b) * gammaB)
			integral += (2*math.Exp(-phi) - 1) * dens * h
		}
		got := TransferFactor(c.a, c.b)
		if math.Abs(got-integral) > 2e-3 {
			t.Errorf("TransferFactor(%g, %g) = %g, numeric integral = %g", c.a, c.b, got, integral)
		}
	}
}

func TestTransferFactorLimits(t *testing.T) {
	if got := TransferFactor(0, 5); got != 1 {
		t.Errorf("identical tasks (a=0): rho = %g, want 1", got)
	}
	if got := TransferFactor(1e6, 5); got < -1 || got > -0.99 {
		t.Errorf("very dissimilar tasks: rho = %g, want ~-1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Gamma parameter accepted")
		}
	}()
	TransferFactor(-1, 1)
}

// Property: rho is monotone decreasing in a (more dissimilarity, less
// correlation) and always in (-1, 1].
func TestQuickTransferFactorMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 0.1 + 3*rng.Float64()
		a1 := 5 * rng.Float64()
		a2 := a1 + 0.1 + rng.Float64()
		r1, r2 := TransferFactor(a1, b), TransferFactor(a2, b)
		return r1 > r2 && r1 <= 1 && r2 > -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	x, v := NelderMead(f, []float64{0, 0}, 1, 400)
	if math.Abs(x[0]-3) > 1e-3 || math.Abs(x[1]+1) > 1e-3 {
		t.Errorf("minimiser = %v, want [3 -1]", x)
	}
	if v > 1e-5 {
		t.Errorf("min value = %g, want ~0", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, v := NelderMead(f, []float64{-1.2, 1}, 0.5, 2000)
	if v > 1e-4 {
		t.Errorf("Rosenbrock min = %g at %v, want ~0 at [1 1]", v, x)
	}
}

func TestNelderMeadNaNTreatedAsInf(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	x, _ := NelderMead(f, []float64{1}, 0.5, 200)
	if math.Abs(x[0]-2) > 1e-3 {
		t.Errorf("minimiser = %v, want [2]", x)
	}
}

func TestNelderMeadEmpty(t *testing.T) {
	x, v := NelderMead(func(x []float64) float64 { return 7 }, nil, 1, 10)
	if x != nil || v != 7 {
		t.Errorf("empty problem: (%v, %g)", x, v)
	}
}
