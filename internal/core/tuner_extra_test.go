package core

import (
	"math/rand"
	"strings"
	"testing"

	"ppatuner/internal/pareto"
)

// tri-objective synthetic problem: conflicts along both coordinates.
func synthObj3(x []float64) []float64 {
	y := synthObj(x)
	f3 := 0.5 + 0.5*(x[0]-0.5)*(x[0]-0.5) + 0.4*(1-x[1])
	return []float64{y[0], y[1], f3}
}

func TestTunerThreeObjectives(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pool := synthPool(rng, 120)
	var evals int
	tn, err := New(pool, func(i int) ([]float64, error) {
		evals++
		return synthObj3(pool[i]), nil
	}, Options{
		NumObjectives: 3,
		InitTarget:    10,
		MaxIter:       80,
		Rng:           rng,
		FitMaxEvals:   80,
		FitSubsample:  60,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ParetoIdx) == 0 {
		t.Fatal("no Pareto candidates in 3-objective run")
	}
	all := make([][]float64, len(pool))
	for i := range pool {
		all[i] = synthObj3(pool[i])
	}
	golden := pareto.FrontPoints(all)
	var approx [][]float64
	for _, i := range res.ParetoIdx {
		approx = append(approx, synthObj3(pool[i]))
	}
	if adrs := pareto.ADRS(golden, approx); adrs > 0.25 {
		t.Errorf("3-objective ADRS = %g, want <= 0.25", adrs)
	}
}

// TestGlobalSelectionDiffersFromFrontier: the vanilla PAL rule and the
// frontier-focused rule must explore different evaluation orders — the knob
// the TCAD'19 baseline depends on.
func TestGlobalSelectionDiffersFromFrontier(t *testing.T) {
	pool := synthPool(rand.New(rand.NewSource(42)), 90)
	run := func(global bool) []int {
		rng := rand.New(rand.NewSource(43))
		opt := defaultOpts(rng)
		opt.MaxIter = 25
		opt.GlobalSelection = global
		tn, err := New(pool, poolEval(pool, synthObj, nil), opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.EvaluatedIdx
	}
	a, b := run(false), run(true)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("GlobalSelection had no effect on the evaluation order")
	}
}

func TestDebugState(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pool := synthPool(rng, 40)
	tn, err := New(pool, poolEval(pool, synthObj, nil), defaultOpts(rng))
	if err != nil {
		t.Fatal(err)
	}
	if got := tn.DebugState(); !strings.Contains(got, "not initialised") {
		t.Errorf("pre-init DebugState = %q", got)
	}
	if _, err := tn.Run(); err != nil {
		t.Fatal(err)
	}
	got := tn.DebugState()
	for _, want := range []string{"rho=", "noiseT=", "delta"} {
		if !strings.Contains(got, want) {
			t.Errorf("DebugState missing %q in:\n%s", want, got)
		}
	}
}

// TestStatusAccounting: every candidate ends in exactly one of the three
// states, and dropped candidates never appear in the result set.
func TestStatusAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	pool := synthPool(rng, 100)
	opt := defaultOpts(rng)
	opt.MaxIter = 400
	tn, err := New(pool, poolEval(pool, synthObj, nil), opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Status) != len(pool) {
		t.Fatalf("status length %d != pool %d", len(res.Status), len(pool))
	}
	inResult := map[int]bool{}
	for _, i := range res.ParetoIdx {
		inResult[i] = true
	}
	for i, s := range res.Status {
		if s == Dropped && inResult[i] {
			// A dropped candidate can only be returned if it was evaluated
			// and proved non-dominated (golden values beat the regions).
			found := false
			for _, e := range res.EvaluatedIdx {
				if e == i {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("unevaluated dropped candidate %d in result", i)
			}
		}
	}
}

// TestRunsNeverExceedBudget holds across option combinations.
func TestRunsNeverExceedBudget(t *testing.T) {
	for _, batch := range []int{1, 3} {
		rng := rand.New(rand.NewSource(46))
		pool := synthPool(rng, 70)
		opt := defaultOpts(rng)
		opt.MaxIter = 20
		opt.Batch = batch
		tn, err := New(pool, poolEval(pool, synthObj, nil), opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Runs > opt.InitTarget+opt.MaxIter*batch {
			t.Errorf("batch=%d: %d runs exceed budget %d", batch, res.Runs, opt.InitTarget+opt.MaxIter*batch)
		}
	}
}
