package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestSkipCandidateSurvivesRun: an evaluator that terminally fails on some
// candidates must not abort the run — the tuner marks them Failed and keeps
// going.
func TestSkipCandidateSurvivesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pool := synthPool(rng, 100)
	dead := map[int]bool{3: true, 17: true, 42: true, 71: true}
	ev := func(i int) ([]float64, error) {
		if dead[i] {
			return nil, fmt.Errorf("tool cannot route candidate %d: %w", i, ErrSkipCandidate)
		}
		return synthObj(pool[i]), nil
	}
	tn, err := New(pool, ev, defaultOpts(rng))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		t.Fatalf("run aborted despite skip policy: %v", err)
	}
	if len(res.ParetoIdx) == 0 {
		t.Fatal("no Pareto candidates despite surviving failures")
	}
	for _, i := range res.FailedIdx {
		if !dead[i] {
			t.Errorf("candidate %d reported failed but was healthy", i)
		}
		if res.Status[i] != Failed {
			t.Errorf("candidate %d status = %v, want Failed", i, res.Status[i])
		}
	}
	// A dead candidate the tuner never selected can legitimately stay
	// classified Pareto (its failure is unobservable); but one that *did*
	// fail must never be returned.
	failed := map[int]bool{}
	for _, i := range res.FailedIdx {
		failed[i] = true
	}
	for _, i := range res.ParetoIdx {
		if failed[i] {
			t.Errorf("failed candidate %d classified Pareto-optimal", i)
		}
	}
	for _, i := range res.EvaluatedIdx {
		if dead[i] {
			t.Errorf("failed candidate %d counted as evaluated", i)
		}
	}
}

// TestSkipDuringInitialisationDrawsReplacement: init failures must not starve
// the surrogate seed — the next random draw replaces the failed candidate.
func TestSkipDuringInitialisationDrawsReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pool := synthPool(rng, 60)
	failFirst := 3 // fail the first three distinct candidates seen
	seen := 0
	dead := map[int]bool{}
	ev := func(i int) ([]float64, error) {
		if seen < failFirst && !dead[i] {
			seen++
			dead[i] = true
		}
		if dead[i] {
			return nil, fmt.Errorf("boom: %w", ErrSkipCandidate)
		}
		return synthObj(pool[i]), nil
	}
	opt := defaultOpts(rng)
	tn, err := New(pool, ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedIdx) != failFirst {
		t.Errorf("failed = %v, want %d entries", res.FailedIdx, failFirst)
	}
	// The init design must still be full-size: InitTarget successes.
	if res.Runs < opt.InitTarget {
		t.Errorf("runs = %d < InitTarget %d: init not replenished", res.Runs, opt.InitTarget)
	}
}

// TestAllInitFailsIsTerminal: when every candidate fails, there is nothing to
// tune — the run must error out, not spin.
func TestAllInitFailsIsTerminal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pool := synthPool(rng, 20)
	ev := func(i int) ([]float64, error) { return nil, fmt.Errorf("dead: %w", ErrSkipCandidate) }
	tn, err := New(pool, ev, defaultOpts(rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(); err == nil {
		t.Fatal("run succeeded with zero observations")
	}
}

// TestNaNObjectiveRejected: NaN/Inf QoR must produce a descriptive error, not
// poisoned surrogates.
func TestNaNObjectiveRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pool := synthPool(rng, 20)
	for _, bad := range [][]float64{{math.NaN(), 1}, {1, math.Inf(1)}, {1, math.Inf(-1)}} {
		ev := func(i int) ([]float64, error) { return bad, nil }
		tn, err := New(pool, ev, defaultOpts(rng))
		if err != nil {
			t.Fatal(err)
		}
		_, err = tn.Run()
		if err == nil {
			t.Fatalf("vector %v accepted", bad)
		}
	}
}

// TestRunContextCancellation: a cancelled context stops the run with
// ctx.Err().
func TestRunContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pool := synthPool(rng, 60)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	ev := func(i int) ([]float64, error) {
		calls++
		if calls == 5 {
			cancel()
		}
		return synthObj(pool[i]), nil
	}
	tn, err := New(pool, ev, defaultOpts(rng))
	if err != nil {
		t.Fatal(err)
	}
	_, err = tn.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls > 6 {
		t.Errorf("evaluator called %d more times after cancellation", calls-5)
	}
}

// TestRunContextPreCancelled: a context cancelled before the run starts must
// stop it before any tool invocation.
func TestRunContextPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	pool := synthPool(rng, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	ev := func(i int) ([]float64, error) { calls++; return synthObj(pool[i]), nil }
	tn, err := New(pool, ev, defaultOpts(rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("evaluator called %d times under a dead context", calls)
	}
}

// TestConcurrentBatchMatchesSequential: with Batch > 1, running the
// evaluations on a worker pool must give bit-identical results to the
// sequential path — concurrency only reorders tool invocations, never
// surrogate updates.
func TestConcurrentBatchMatchesSequential(t *testing.T) {
	pool := synthPool(rand.New(rand.NewSource(27)), 120)
	run := func(workers int) *Result {
		rng := rand.New(rand.NewSource(28))
		opt := defaultOpts(rng)
		opt.Batch = 4
		opt.Workers = workers
		tn, err := New(pool, poolEval(pool, synthObj, nil), opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(4)
	if seq.Runs != par.Runs || seq.Iters != par.Iters {
		t.Fatalf("sequential %d runs/%d iters, parallel %d/%d", seq.Runs, seq.Iters, par.Runs, par.Iters)
	}
	if len(seq.ParetoIdx) != len(par.ParetoIdx) {
		t.Fatalf("pareto sizes differ: %d vs %d", len(seq.ParetoIdx), len(par.ParetoIdx))
	}
	for k := range seq.ParetoIdx {
		if seq.ParetoIdx[k] != par.ParetoIdx[k] {
			t.Fatal("pareto sets differ between worker counts")
		}
	}
	for k := range seq.EvaluatedIdx {
		if seq.EvaluatedIdx[k] != par.EvaluatedIdx[k] {
			t.Fatal("evaluation orders differ between worker counts")
		}
	}
}

// TestConcurrentBatchActuallyRunsConcurrently: the worker pool must overlap
// evaluator calls (bounded by Workers).
func TestConcurrentBatchActuallyRunsConcurrently(t *testing.T) {
	pool := synthPool(rand.New(rand.NewSource(29)), 150)
	var inFlight, peak atomic.Int32
	gate := make(chan struct{})
	close(gate)
	ev := func(i int) ([]float64, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		<-gate
		inFlight.Add(-1)
		return synthObj(pool[i]), nil
	}
	rng := rand.New(rand.NewSource(30))
	opt := defaultOpts(rng)
	opt.Batch = 6
	opt.Workers = 3
	tn, err := New(pool, ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("peak in-flight evaluations = %d, want <= Workers (3)", p)
	}
}

// TestBatchSkipAndErrorMix: in one batch, a skip retires its candidate while
// a hard error aborts the run.
func TestBatchSkipAndErrorMix(t *testing.T) {
	pool := synthPool(rand.New(rand.NewSource(31)), 80)
	boom := errors.New("hard failure")
	run := func(hardFail bool) (*Result, error) {
		rng := rand.New(rand.NewSource(32))
		opt := defaultOpts(rng)
		opt.Batch = 3
		opt.MaxIter = 30
		calls := 0
		ev := func(i int) ([]float64, error) {
			calls++
			if calls > opt.InitTarget { // past init: start failing
				if hardFail && calls == opt.InitTarget+2 {
					return nil, boom
				}
				if calls%4 == 0 {
					return nil, fmt.Errorf("soft: %w", ErrSkipCandidate)
				}
			}
			return synthObj(pool[i]), nil
		}
		tn, err := New(pool, ev, opt)
		if err != nil {
			t.Fatal(err)
		}
		return tn.Run()
	}
	if _, err := run(true); !errors.Is(err, boom) {
		t.Errorf("hard failure err = %v, want wrapped boom", err)
	}
	res, err := run(false)
	if err != nil {
		t.Fatalf("soft failures aborted the run: %v", err)
	}
	if len(res.FailedIdx) == 0 {
		t.Error("no candidates recorded failed despite soft failures")
	}
}

// TestWorkersDefaultsToBatch: the worker pool defaults to one worker per
// licence (Batch), but an explicit Workers may exceed Batch — the surplus
// accelerates the surrogate math even when tool licences are scarce.
func TestWorkersDefaultsToBatch(t *testing.T) {
	o := Options{NumObjectives: 2, Batch: 5}
	o.setDefaults()
	if o.Workers != 5 {
		t.Errorf("Workers = %d, want Batch (5)", o.Workers)
	}
	o = Options{NumObjectives: 2, Batch: 2, Workers: 9}
	o.setDefaults()
	if o.Workers != 9 {
		t.Errorf("Workers = %d, want 9 (explicit Workers is not clamped to Batch)", o.Workers)
	}
}

func TestStatusAlive(t *testing.T) {
	if !Undecided.alive() || !Pareto.alive() {
		t.Error("undecided/pareto must be alive")
	}
	if Dropped.alive() || Failed.alive() {
		t.Error("dropped/failed must not be alive")
	}
}
