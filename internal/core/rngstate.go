package core

import (
	"encoding"
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
)

// PCGSource adapts a math/rand/v2 PCG generator to math/rand's Source64 so
// it can drive the *rand.Rand the tuner and the baselines consume, while
// exposing the PCG's serialisable state (encoding.BinaryMarshaler) for
// checkpointing. A resumable run seeds a PCGSource once, snapshots its
// state into the checkpoint, and on resume restores that state instead of
// re-deriving a generator from the seed — so recovery no longer depends on
// the seed-derivation scheme (or anything upstream of it) staying frozen
// between the crashed and the resumed process.
//
// rand.New consumes the source exclusively through Uint64 (Source64), and
// *rand.Rand keeps no hidden state of its own outside Read — which this
// codebase never uses — so the PCG state is the complete generator state.
type PCGSource struct {
	pcg *randv2.PCG
}

// Interface conformance: a PCGSource is a rand.Source64 and round-trips
// through encoding.BinaryMarshaler/BinaryUnmarshaler.
var (
	_ rand.Source64              = (*PCGSource)(nil)
	_ encoding.BinaryMarshaler   = (*PCGSource)(nil)
	_ encoding.BinaryUnmarshaler = (*PCGSource)(nil)
)

// NewPCGSource returns a source seeded with the two PCG seed words.
func NewPCGSource(seed1, seed2 uint64) *PCGSource {
	return &PCGSource{pcg: randv2.NewPCG(seed1, seed2)}
}

// Uint64 returns the next value of the underlying PCG stream.
func (s *PCGSource) Uint64() uint64 { return s.pcg.Uint64() }

// Int63 implements rand.Source by truncating the PCG stream to 63 bits.
// rand.New prefers Uint64 when the source implements Source64, so this is
// only exercised by callers using the narrow interface directly.
func (s *PCGSource) Int63() int64 { return int64(s.pcg.Uint64() >> 1) }

// Seed implements rand.Source; the seed fills both PCG seed words.
func (s *PCGSource) Seed(seed int64) { s.pcg.Seed(uint64(seed), uint64(seed)) }

// MarshalBinary serialises the current PCG state.
func (s *PCGSource) MarshalBinary() ([]byte, error) { return s.pcg.MarshalBinary() }

// UnmarshalBinary restores a state captured by MarshalBinary.
func (s *PCGSource) UnmarshalBinary(data []byte) error {
	if err := s.pcg.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("core: restore PCG state: %w", err)
	}
	return nil
}

// RandState serialises the tuner's random source (Options.Src) when it
// implements encoding.BinaryMarshaler — e.g. a *PCGSource. It returns
// (nil, nil) when the tuner was built from a bare Options.Rng or from a
// source without serialisable state; callers treat nil as "state not
// available, fall back to seed replay".
func (t *Tuner) RandState() ([]byte, error) {
	m, ok := t.opt.Src.(encoding.BinaryMarshaler)
	if !ok {
		return nil, nil
	}
	return m.MarshalBinary()
}

// Iters reports the number of tuning iterations executed so far; together
// with RandState it is the mid-run progress a schema-v2 checkpoint records.
func (t *Tuner) Iters() int { return t.iters }
