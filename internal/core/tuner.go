// Package core implements PPATuner, the paper's contribution: a Pareto-
// driven, pool-based active-learning tuner whose surrogates are transfer
// Gaussian processes (one independent GP per QoR metric, Sec. 3.2.1).
//
// Each iteration performs the three stages of Algorithm 1:
//
//   - Model calibration: the transfer GPs predict mean and uncertainty for
//     every still-undecided candidate; per-candidate hyper-rectangles R(x)
//     (Eq. 9) are intersected into monotonically shrinking uncertainty
//     regions U_t(x) (Eq. 10).
//   - Decision-making: candidates δ-dominated by another candidate's
//     pessimistic corner are dropped (Eq. 11); candidates no optimistic
//     corner can δ-dominate are classified Pareto-optimal (Eq. 12).
//   - Selection: the candidate with the longest uncertainty-region diameter
//     is sent to the PD tool for golden QoR values (Eq. 13); batch variants
//     send the top-B.
//
// The tuner is generic over the evaluator: the benchmark harness answers
// evaluations from offline datasets, live users wire in a real tool run.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"ppatuner/internal/gp"
	"ppatuner/internal/par"
)

// Evaluator returns the golden QoR objective vector of pool candidate i.
// It is the abstraction of "send the configuration to the PD tool".
type Evaluator func(i int) ([]float64, error)

// ErrSkipCandidate signals that evaluating a candidate failed terminally but
// the run should survive: the tuner marks the candidate Failed and continues
// the PAL loop instead of aborting. Fault-tolerant evaluator wrappers (see
// internal/robust) wrap their give-up errors with this sentinel; a raw
// evaluator can also return it directly for configurations it knows the tool
// cannot complete.
var ErrSkipCandidate = errors.New("core: skip candidate")

// Status classifies a pool candidate during the run.
type Status int8

const (
	// Undecided candidates are still being narrowed down.
	Undecided Status = iota
	// Dropped candidates are δ-dominated and out of the race (Eq. 11).
	Dropped
	// Pareto candidates are classified δ-accurate Pareto-optimal (Eq. 12).
	Pareto
	// Failed candidates could not be evaluated (terminal tool failure under a
	// skip policy); they are out of the race like Dropped, but for operational
	// rather than algorithmic reasons.
	Failed
)

// alive reports whether a candidate is still in the race: Failed candidates
// are excluded like Dropped ones.
func (s Status) alive() bool { return s != Dropped && s != Failed }

// Options configures PPATuner.
type Options struct {
	// NumObjectives is the dimension of the QoR objective space (2 or 3 in
	// the paper).
	NumObjectives int
	// SourceX/SourceY carry the historical (source-task) configurations and
	// their QoR values per objective: SourceY[k][j] is objective k of source
	// point j. Empty disables transfer (the tuner degenerates to plain PAL).
	SourceX [][]float64
	SourceY [][]float64
	// InitTarget is the number of random target-task evaluations used to
	// seed the surrogates (the paper uses ≤5% of the target dataset).
	InitTarget int
	// Tau scales the uncertainty hyper-rectangle: R(x) spans μ ± √Tau·σ
	// (Eq. 9). Default 9.
	Tau float64
	// DeltaFrac sets the relaxation vector δ as a fraction of each
	// objective's observed range at initialisation (Eq. 11/12). Default 0.02.
	DeltaFrac float64
	// MaxIter bounds tool evaluations after initialisation (T_max in
	// Algorithm 1). Default 300.
	MaxIter int
	// Batch evaluates the top-B longest-diameter candidates per iteration
	// (Sec. 3.3 licence parallelism). Default 1.
	Batch int
	// Kernel selects the covariance family (zero value: RBF).
	Kernel gp.CovKind
	// ARD enables per-dimension lengthscales.
	ARD bool
	// GP selects the surrogate implementation (zero value: exact GP). With
	// GP.Sparse the tuner uses the O(n·m²) inducing-point approximation; when
	// GP.Seed is zero the inducing-selection seed is drawn from the tuner's
	// RNG stream at initialisation, so runs stay reproducible per seed and
	// the exact path consumes no extra draws.
	GP gp.Spec
	// FitMaxEvals bounds each hyper-parameter fit (default 160).
	FitMaxEvals int
	// FitSubsample caps points per marginal-likelihood evaluation
	// (default 140).
	FitSubsample int
	// FixTransfer freezes the transfer parameters (ablation hook).
	FixTransfer bool
	// GlobalSelection reverts Eq. (13) to the vanilla PAL rule — the longest
	// diameter over all alive candidates — instead of restricting selection
	// to the optimistic Pareto frontier. The TCAD'19 baseline uses this.
	GlobalSelection bool
	// Workers bounds the tuner's concurrency: tool invocations within one
	// selection batch (Sec. 3.3: one worker per tool licence), the per-
	// objective surrogate fits, and the sharded region-update/classification
	// sweeps over the pool. Default: Batch. It may exceed Batch when the
	// machine has more cores than tool licences — the extra workers then
	// speed up the surrogate math only. Every parallel section applies its
	// results in deterministic order, so any worker count reproduces the
	// serial run exactly.
	Workers int
	// Rng drives the initial design. Either Rng or Src is required; when Rng
	// is nil a generator is built from Src.
	Rng *rand.Rand
	// Src, when non-nil, is the random source behind the tuner's generator.
	// Supplying a source with serialisable state (e.g. *PCGSource, backed by
	// math/rand/v2's PCG) lets checkpointing layers snapshot and restore the
	// exact RNG state via Tuner.RandState, so a resumed run replays the same
	// draws without re-deriving the generator from a seed.
	Src rand.Source
}

func (o *Options) setDefaults() {
	if o.Tau <= 0 {
		o.Tau = 9
	}
	if o.DeltaFrac <= 0 {
		o.DeltaFrac = 0.02
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 300
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	if o.FitMaxEvals <= 0 {
		o.FitMaxEvals = 160
	}
	if o.FitSubsample <= 0 {
		o.FitSubsample = 140
	}
	if o.InitTarget <= 0 {
		o.InitTarget = 10
	}
	if o.Workers <= 0 {
		o.Workers = o.Batch
	}
}

// Result is the tuner outcome.
type Result struct {
	// ParetoIdx are the pool indices classified (δ-accurate) Pareto-optimal.
	ParetoIdx []int
	// EvaluatedIdx are the pool indices evaluated by the tool, in order.
	EvaluatedIdx []int
	// FailedIdx are the pool indices whose evaluation failed terminally under
	// a skip policy (ErrSkipCandidate), in failure order. The run survived
	// without their QoR.
	FailedIdx []int
	// Runs is the number of tool evaluations, including initialisation.
	Runs int
	// Iters is the number of tuning iterations executed.
	Iters int
	// Status is the final per-candidate classification.
	Status []Status
	// Rho is the learned cross-task correlation per objective (transfer
	// diagnostics; all 1 when no source data).
	Rho []float64
}

// Tuner is the reusable PPATuner engine. Construct with New, run with Run.
type Tuner struct {
	opt  Options
	pool [][]float64
	eval Evaluator

	gps    []gp.Model
	status []Status
	// lo/hi are the uncertainty-region corners per candidate per objective.
	lo, hi [][]float64
	// known maps evaluated candidates to their golden vectors.
	known map[int][]float64
	// scale normalises objectives for the diameter computation.
	scale []float64
	delta []float64

	evaluated []int
	failed    []int
	refitAt   []int
	iters     int
}

// New validates inputs and builds a tuner over the candidate pool (points in
// the normalised parameter space of the target task).
func New(pool [][]float64, eval Evaluator, opt Options) (*Tuner, error) {
	if len(pool) == 0 {
		return nil, errors.New("core: empty candidate pool")
	}
	if eval == nil {
		return nil, errors.New("core: nil evaluator")
	}
	if opt.NumObjectives < 1 {
		return nil, fmt.Errorf("core: NumObjectives = %d", opt.NumObjectives)
	}
	if opt.Rng == nil && opt.Src != nil {
		opt.Rng = rand.New(opt.Src)
	}
	if opt.Rng == nil {
		return nil, errors.New("core: Options.Rng (or Options.Src) is required for reproducibility")
	}
	if len(opt.SourceY) != 0 && len(opt.SourceY) != opt.NumObjectives {
		return nil, fmt.Errorf("core: SourceY has %d objectives, want %d", len(opt.SourceY), opt.NumObjectives)
	}
	for k := range opt.SourceY {
		if len(opt.SourceY[k]) != len(opt.SourceX) {
			return nil, fmt.Errorf("core: SourceY[%d] has %d values, SourceX has %d points", k, len(opt.SourceY[k]), len(opt.SourceX))
		}
	}
	dim := len(pool[0])
	for i, p := range pool {
		if len(p) != dim {
			return nil, fmt.Errorf("core: pool point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	opt.setDefaults()
	return &Tuner{opt: opt, pool: pool, eval: eval, known: map[int][]float64{}}, nil
}

// Run executes Algorithm 1 and returns the predicted Pareto-optimal set.
func (t *Tuner) Run() (*Result, error) {
	return t.RunContext(context.Background())
}

// RunContext executes Algorithm 1 under a context: cancelling ctx stops the
// run between tool evaluations (and, with a context-aware evaluator wrapper
// such as robust.Evaluator, inside them) and returns ctx.Err(). Evaluation
// errors wrapping ErrSkipCandidate mark the candidate Failed and the loop
// continues; any other evaluation error aborts the run.
func (t *Tuner) RunContext(ctx context.Context) (*Result, error) {
	if err := t.initialise(ctx); err != nil {
		return nil, err
	}
	for t.iters = 0; t.iters < t.opt.MaxIter; t.iters++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Model calibration: shrink uncertainty regions (Eq. 9–10).
		t.updateRegions()
		// Decision-making: drop and classify (Eq. 11–12).
		t.decide()
		if !t.anyUndecided() {
			break
		}
		// Selection: evaluate the longest-diameter candidates (Eq. 13).
		picks := t.selectBatch()
		if len(picks) == 0 {
			break
		}
		if err := t.observeBatch(ctx, picks); err != nil {
			return nil, err
		}
		if err := t.maybeRefit(); err != nil {
			return nil, err
		}
	}
	res := &Result{
		EvaluatedIdx: append([]int(nil), t.evaluated...),
		FailedIdx:    append([]int(nil), t.failed...),
		Runs:         len(t.evaluated),
		Iters:        t.iters,
		Status:       append([]Status(nil), t.status...),
	}
	// The predicted Pareto set is the classified candidates plus the
	// non-dominated evaluated points: evaluations are golden QoR the tool
	// already produced, so discarding them would waste tool runs — the paper
	// feeds exactly this prediction set back through the flow.
	inSet := map[int]bool{}
	for i, s := range t.status {
		if s == Pareto {
			inSet[i] = true
		}
	}
	for _, i := range t.nonDominatedEvaluated() {
		inSet[i] = true
	}
	for i := range t.status {
		if inSet[i] {
			res.ParetoIdx = append(res.ParetoIdx, i)
		}
	}
	for _, g := range t.gps {
		res.Rho = append(res.Rho, g.Rho())
	}
	return res, nil
}

// initialise seeds the transfer GPs with source data and a random target
// design, fits hyper-parameters, and attaches the candidate pool.
func (t *Tuner) initialise(ctx context.Context) error {
	n := len(t.pool)
	t.status = make([]Status, n)
	t.lo = make([][]float64, n)
	t.hi = make([][]float64, n)
	for i := range t.lo {
		t.lo[i] = make([]float64, t.opt.NumObjectives)
		t.hi[i] = make([]float64, t.opt.NumObjectives)
		for k := range t.lo[i] {
			t.lo[i][k] = math.Inf(-1)
			t.hi[i][k] = math.Inf(1)
		}
	}

	// Random initial target design. The permutation covers the whole pool so
	// that candidates failing terminally under a skip policy can be replaced
	// by the next random draw; the fault-free path consumes exactly the first
	// init entries, preserving seed-for-seed behaviour.
	init := t.opt.InitTarget
	if init > n {
		init = n
	}
	perm := t.opt.Rng.Perm(n)
	initX := make([][]float64, 0, init)
	initY := make([][]float64, 0, init)
	for _, i := range perm {
		if len(initY) == init {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		y, err := t.eval(i)
		if err != nil {
			if errors.Is(err, ErrSkipCandidate) {
				t.fail(i)
				continue
			}
			return fmt.Errorf("core: initial evaluation %d: %w", i, err)
		}
		if err := validateObjectives(y, t.opt.NumObjectives); err != nil {
			return fmt.Errorf("core: initial evaluation %d: %w", i, err)
		}
		t.known[i] = y
		t.evaluated = append(t.evaluated, i)
		initX = append(initX, t.pool[i])
		initY = append(initY, y)
	}
	if len(initY) == 0 {
		return errors.New("core: every initial evaluation failed; no data to seed the surrogates")
	}

	// Objective scales and δ from observed values (init + source).
	t.scale = make([]float64, t.opt.NumObjectives)
	t.delta = make([]float64, t.opt.NumObjectives)
	for k := 0; k < t.opt.NumObjectives; k++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, y := range initY {
			lo = math.Min(lo, y[k])
			hi = math.Max(hi, y[k])
		}
		span := hi - lo
		if span <= 0 || math.IsInf(span, 0) {
			span = math.Max(math.Abs(hi), 1e-9)
		}
		t.scale[k] = span
		t.delta[k] = t.opt.DeltaFrac * span
	}

	// Per-objective transfer GPs. The objectives are modelled independently
	// (Sec. 3.2.1), so their builds — including the expensive hyper-parameter
	// fits — run concurrently when Workers allows. Each goroutine touches
	// only its own GP and reads shared inputs, and errors are reported in
	// objective order, so the outcome is identical to the sequential build.
	dim := len(t.pool[0])
	kernel := t.opt.Kernel
	t.gps = make([]gp.Model, t.opt.NumObjectives)
	reserve := t.opt.MaxIter * t.opt.Batch
	if reserve > len(t.pool) {
		reserve = len(t.pool)
	}
	spec := t.opt.GP
	if spec.Sparse && spec.Seed == 0 {
		// One draw, taken before the concurrent builds so every worker count
		// sees the same seed; the exact path skips it and stays byte-identical
		// with pre-Spec runs.
		spec.Seed = t.opt.Rng.Uint64()
	}
	buildGP := func(k int) error {
		g := spec.New(kernel, dim, t.opt.ARD)
		if len(t.opt.SourceX) > 0 {
			if err := g.SetSource(t.opt.SourceX, t.opt.SourceY[k]); err != nil {
				return err
			}
		}
		ys := make([]float64, len(initY))
		for j, y := range initY {
			ys[j] = y[k]
		}
		if err := g.SetTarget(initX, ys); err != nil {
			return err
		}
		g.ReserveAdds(reserve)
		g.SetWorkers(t.opt.Workers)
		if err := g.Fit(gp.FitOptions{MaxEvals: t.opt.FitMaxEvals, Subsample: t.opt.FitSubsample, FixTransfer: t.opt.FixTransfer}); err != nil {
			return fmt.Errorf("core: initial fit objective %d: %w", k, err)
		}
		if err := g.AttachPool(t.pool); err != nil {
			return err
		}
		t.gps[k] = g
		return nil
	}
	if err := t.eachObjective(buildGP); err != nil {
		return err
	}

	// Refit schedule: geometric in target-observation count.
	base := len(t.evaluated)
	t.refitAt = []int{base + 20, base + 60, base + 140, base + 300}
	return nil
}

// eachObjective runs fn(k) for every objective, concurrently when Workers
// allows. The first error in objective order wins, matching the sequential
// loop's behaviour.
func (t *Tuner) eachObjective(fn func(k int) error) error {
	nk := t.opt.NumObjectives
	if t.opt.Workers <= 1 || nk <= 1 {
		for k := 0; k < nk; k++ {
			if err := fn(k); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, nk)
	var wg sync.WaitGroup
	for k := 0; k < nk; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = fn(k)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// updateRegions intersects each alive candidate's region with the current
// posterior hyper-rectangle. Candidates touch disjoint state, so the sweep is
// sharded across Workers goroutines; each candidate's arithmetic is the same
// as in the serial sweep, so any worker count produces identical regions.
func (t *Tuner) updateRegions() {
	beta := math.Sqrt(t.opt.Tau)
	par.Do(t.opt.Workers, len(t.pool), func(lo, hi int) {
		t.updateRegionRange(beta, lo, hi)
	})
}

func (t *Tuner) updateRegionRange(beta float64, from, to int) {
	for i := from; i < to; i++ {
		if !t.status[i].alive() {
			continue
		}
		if y, ok := t.known[i]; ok {
			copy(t.lo[i], y)
			copy(t.hi[i], y)
			continue
		}
		for k, g := range t.gps {
			mu, sd := g.PredictPool(i)
			lo := mu - beta*sd
			hi := mu + beta*sd
			// Monotone intersection (Eq. 10); a crossed region collapses to
			// the midpoint overlap.
			if lo > t.lo[i][k] {
				t.lo[i][k] = lo
			}
			if hi < t.hi[i][k] {
				t.hi[i][k] = hi
			}
			if t.lo[i][k] > t.hi[i][k] {
				m := (t.lo[i][k] + t.hi[i][k]) / 2
				t.lo[i][k] = m
				t.hi[i][k] = m
			}
		}
	}
}

// decide applies the dropping rule (Eq. 11) and the Pareto classification
// rule (Eq. 12).
//
// Both rules quantify over all alive candidates, but only the non-dominated
// corners matter: if any alive x' pessimistically δ-dominates x, then some
// member of the non-dominated set of pessimistic corners does too (weak
// dominance is transitive), and symmetrically for the optimistic corners of
// the classification rule. Testing against those skyline sets turns the
// naive O(n²) pass into O(n·|front|), which is what makes 5000-candidate
// pools tractable.
func (t *Tuner) decide() {
	alive := t.aliveIndices()
	// Dropping: x is dropped when some alive x' pessimistically δ-dominates
	// x's optimistic corner. Each shard decides its own candidates against
	// the pre-computed skyline and writes only status[i], so the parallel
	// sweep reaches exactly the serial verdicts.
	ndHi := t.skyline(alive, t.hi)
	par.Do(t.opt.Workers, len(alive), func(from, to int) {
		for _, i := range alive[from:to] {
			if t.status[i] != Undecided {
				continue
			}
			for _, j := range ndHi {
				if i == j {
					continue
				}
				if t.pessDominatesOpt(j, i) {
					t.status[i] = Dropped
					break
				}
			}
		}
	})
	// Classification: x becomes Pareto when no alive x' could still
	// δ-dominate x's pessimistic corner with its optimistic corner. The
	// alive snapshot and skyline are fixed before the sweep, so shards only
	// read shared state and write their own status entries.
	alive = t.aliveIndices()
	ndLo := t.skyline(alive, t.lo)
	inNdLo := make(map[int]bool, len(ndLo))
	for _, j := range ndLo {
		inNdLo[j] = true
	}
	par.Do(t.opt.Workers, len(alive), func(from, to int) {
		for _, i := range alive[from:to] {
			if t.status[i] != Undecided {
				continue
			}
			safe := true
			for _, j := range ndLo {
				if i == j {
					continue
				}
				if t.optCouldDominatePess(j, i) {
					safe = false
					break
				}
			}
			// A skyline member may shadow its own blockers: when i itself is
			// in the skyline and no other skyline member blocks it, fall back
			// to a full scan (rare — at most |front| candidates per pass).
			if safe && inNdLo[i] {
				for _, j := range alive {
					if i == j {
						continue
					}
					if t.optCouldDominatePess(j, i) {
						safe = false
						break
					}
				}
			}
			if safe {
				t.status[i] = Pareto
			}
		}
	})
}

// skyline returns the indices (subset of idx) whose corner vectors are
// non-dominated (minimal). It sorts by coordinate sum so each point only
// needs testing against the skyline found so far.
func (t *Tuner) skyline(idx []int, corner [][]float64) []int {
	order := append([]int(nil), idx...)
	sums := make(map[int]float64, len(order))
	for _, i := range order {
		var s float64
		for _, v := range corner[i] {
			s += v
		}
		sums[i] = s
	}
	sort.Slice(order, func(a, b int) bool {
		if sums[order[a]] != sums[order[b]] {
			return sums[order[a]] < sums[order[b]]
		}
		return order[a] < order[b]
	})
	var nd []int
	for _, i := range order {
		dominated := false
		for _, j := range nd {
			if weaklyDominates(corner[j], corner[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			nd = append(nd, i)
		}
	}
	return nd
}

func weaklyDominates(a, b []float64) bool {
	for k := range a {
		if a[k] > b[k] {
			return false
		}
	}
	return true
}

// pessDominatesOpt reports whether candidate j's pessimistic corner
// δ-dominates candidate i's optimistic corner: max(U(x')) ≤ min(U(x)) + δ.
func (t *Tuner) pessDominatesOpt(j, i int) bool {
	strict := false
	for k := range t.delta {
		if t.hi[j][k] > t.lo[i][k]+t.delta[k] {
			return false
		}
		if t.hi[j][k] < t.lo[i][k] {
			strict = true
		}
	}
	return strict
}

// optCouldDominatePess reports whether candidate j's optimistic corner could
// dominate candidate i's pessimistic corner by more than δ in every
// objective — the event that blocks Pareto classification of i.
func (t *Tuner) optCouldDominatePess(j, i int) bool {
	for k := range t.delta {
		if t.lo[j][k] > t.hi[i][k]-t.delta[k] {
			return false
		}
	}
	return true
}

func (t *Tuner) aliveIndices() []int {
	out := make([]int, 0, len(t.pool))
	for i, s := range t.status {
		if s.alive() {
			out = append(out, i)
		}
	}
	return out
}

func (t *Tuner) anyUndecided() bool {
	for _, s := range t.status {
		if s == Undecided {
			return true
		}
	}
	return false
}

// diameter is the scaled L2 length of the region's diagonal (Eq. 13).
func (t *Tuner) diameter(i int) float64 {
	var s float64
	for k := range t.scale {
		d := (t.hi[i][k] - t.lo[i][k]) / t.scale[k]
		s += d * d
	}
	return math.Sqrt(s)
}

// selectBatch returns the top-B longest-diameter unevaluated candidates
// among the undecided and predicted-Pareto points (the paper's selection
// scope explicitly includes both). Candidates are restricted to the
// *optimistic Pareto front* — points whose optimistic corner is not
// dominated by another alive candidate's optimistic corner: only those can
// still "benefit searching the Pareto set" (Sec. 3.2.4); resolving the
// uncertainty of a point that is optimistically dominated cannot change the
// front.
func (t *Tuner) selectBatch() []int {
	type cand struct {
		idx int
		d   float64
	}
	alive := t.aliveIndices()
	inFrontier := map[int]bool{}
	if !t.opt.GlobalSelection {
		for _, i := range t.skyline(alive, t.lo) {
			inFrontier[i] = true
		}
	}
	var cands []cand
	for i, s := range t.status {
		if !s.alive() || (!t.opt.GlobalSelection && !inFrontier[i]) {
			continue
		}
		if _, done := t.known[i]; done {
			continue
		}
		cands = append(cands, cand{i, t.diameter(i)})
	}
	if len(cands) == 0 {
		// Every frontier point is already evaluated: fall back to the widest
		// alive region anywhere, so undecided points still get resolved.
		for i, s := range t.status {
			if !s.alive() {
				continue
			}
			if _, done := t.known[i]; done {
				continue
			}
			cands = append(cands, cand{i, t.diameter(i)})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	// Partial selection of the top Batch by diameter.
	b := t.opt.Batch
	if b > len(cands) {
		b = len(cands)
	}
	for x := 0; x < b; x++ {
		best := x
		for y := x + 1; y < len(cands); y++ {
			if cands[y].d > cands[best].d {
				best = y
			}
		}
		cands[x], cands[best] = cands[best], cands[x]
	}
	out := make([]int, b)
	for x := 0; x < b; x++ {
		out[x] = cands[x].idx
	}
	return out
}

// validateObjectives rejects malformed QoR vectors before they reach the GP
// surrogates: a single NaN/Inf poisons every subsequent Cholesky factor and
// silently corrupts the whole run.
func validateObjectives(y []float64, want int) error {
	if len(y) != want {
		return fmt.Errorf("evaluator returned %d objectives, want %d", len(y), want)
	}
	for k, v := range y {
		if math.IsNaN(v) {
			return fmt.Errorf("evaluator returned NaN for objective %d (vector %v): refusing to poison the surrogates", k, y)
		}
		if math.IsInf(v, 0) {
			return fmt.Errorf("evaluator returned %v for objective %d (vector %v): refusing to poison the surrogates", v, k, y)
		}
	}
	return nil
}

// fail marks candidate i terminally failed and out of the race.
func (t *Tuner) fail(i int) {
	t.status[i] = Failed
	t.failed = append(t.failed, i)
}

// observe evaluates candidate i with the tool and updates the surrogates.
func (t *Tuner) observe(i int) error {
	y, err := t.eval(i)
	return t.record(i, y, err)
}

// record applies one evaluation outcome: a skip error retires the candidate,
// a valid vector feeds the surrogates.
func (t *Tuner) record(i int, y []float64, err error) error {
	if err != nil {
		if errors.Is(err, ErrSkipCandidate) {
			t.fail(i)
			return nil
		}
		return fmt.Errorf("core: evaluation %d: %w", i, err)
	}
	if err := validateObjectives(y, t.opt.NumObjectives); err != nil {
		return fmt.Errorf("core: evaluation %d: %w", i, err)
	}
	t.known[i] = y
	t.evaluated = append(t.evaluated, i)
	for k, g := range t.gps {
		if err := g.AddTarget(t.pool[i], y[k]); err != nil {
			return err
		}
	}
	return nil
}

// observeBatch evaluates the selected candidates, running up to Workers tool
// invocations concurrently (Sec. 3.3: one in-flight run per tool licence).
// Only the evaluator calls are concurrent; outcomes are applied to the
// surrogates sequentially in selection order, so the posterior — and with it
// the whole run — is deterministic regardless of goroutine scheduling.
func (t *Tuner) observeBatch(ctx context.Context, picks []int) error {
	if len(picks) == 1 || t.opt.Workers <= 1 {
		for _, i := range picks {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := t.observe(i); err != nil {
				return err
			}
		}
		return nil
	}
	type outcome struct {
		y   []float64
		err error
	}
	outs := make([]outcome, len(picks))
	sem := make(chan struct{}, t.opt.Workers)
	var wg sync.WaitGroup
	for j, i := range picks {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				outs[j] = outcome{nil, err}
				return
			}
			y, err := t.eval(i)
			outs[j] = outcome{y, err}
		}(j, i)
	}
	wg.Wait()
	for j, i := range picks {
		if err := t.record(i, outs[j].y, outs[j].err); err != nil {
			return err
		}
	}
	return nil
}

// maybeRefit re-optimises the GP hyper-parameters at scheduled points.
func (t *Tuner) maybeRefit() error {
	n := len(t.evaluated)
	due := false
	for _, at := range t.refitAt {
		if n == at {
			due = true
			break
		}
	}
	if !due {
		return nil
	}
	// The per-objective refits are independent, so they run concurrently
	// under the same Workers bound as the initial fits.
	return t.eachObjective(func(k int) error {
		if err := t.gps[k].Fit(gp.FitOptions{MaxEvals: t.opt.FitMaxEvals, Subsample: t.opt.FitSubsample, FixTransfer: t.opt.FixTransfer}); err != nil {
			return fmt.Errorf("core: refit objective %d: %w", k, err)
		}
		return nil
	})
}

// nonDominatedEvaluated returns the evaluated points whose golden vectors
// are mutually non-dominated.
func (t *Tuner) nonDominatedEvaluated() []int {
	// Iterate sorted indices: ranging t.known directly would emit the front
	// in map order, which varies run to run and breaks seeded reproducibility.
	idx := make([]int, 0, len(t.known))
	for i := range t.known {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var out []int
	for _, i := range idx {
		yi := t.known[i]
		dominated := false
		for _, j := range idx {
			if i == j {
				continue
			}
			if dominatesVec(t.known[j], yi) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func dominatesVec(a, b []float64) bool {
	strict := false
	for k := range a {
		if a[k] > b[k] {
			return false
		}
		if a[k] < b[k] {
			strict = true
		}
	}
	return strict
}

// DebugState summarises surrogate and region diagnostics (used by probes and
// examples; cheap, human-readable).
func (t *Tuner) DebugState() string {
	if t.gps == nil {
		return "core: not initialised"
	}
	s := ""
	for k, g := range t.gps {
		nt, _ := g.Noise()
		s += fmt.Sprintf("obj %d: rho=%.3f var=%.3f len=%v noiseT=%.2e scale=%.4g delta=%.4g\n",
			k, g.Rho(), g.Cov().Var, g.Cov().Len, nt, t.scale[k], t.delta[k])
	}
	// Region width stats over alive unevaluated points.
	var wsum [8]float64
	cnt := 0
	for i := range t.pool {
		if !t.status[i].alive() {
			continue
		}
		if _, done := t.known[i]; done {
			continue
		}
		for k := range t.delta {
			wsum[k] += t.hi[i][k] - t.lo[i][k]
		}
		cnt++
	}
	if cnt > 0 {
		for k := range t.delta {
			s += fmt.Sprintf("obj %d: avg region width %.4g (delta %.4g)\n", k, wsum[k]/float64(cnt), t.delta[k])
		}
	}
	return s
}
