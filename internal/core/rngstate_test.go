package core

import (
	"math/rand"
	"testing"
)

// A snapshot taken mid-stream must let a fresh source continue the exact
// sequence — the property schema-v2 checkpoint resume rests on.
func TestPCGSourceStateRoundTrip(t *testing.T) {
	src := NewPCGSource(7, 11)
	for i := 0; i < 100; i++ {
		src.Uint64()
	}
	state, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 50)
	for i := range want {
		want[i] = src.Uint64()
	}

	restored := NewPCGSource(0, 0) // seeds irrelevant: state overwrites them
	if err := restored.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := restored.Uint64(); got != w {
			t.Fatalf("draw %d after restore = %d, want %d", i, got, w)
		}
	}
}

func TestPCGSourceUnmarshalRejectsGarbage(t *testing.T) {
	src := NewPCGSource(1, 2)
	if err := src.UnmarshalBinary([]byte("not a pcg state")); err == nil {
		t.Fatal("garbage state accepted")
	}
}

// Restoring a mid-stream snapshot into a *rand.Rand must continue the
// derived stream (Perm, Float64) identically — i.e. rand.Rand holds no
// hidden state beyond the source.
func TestPCGSourceDrivesRandDeterministically(t *testing.T) {
	src := NewPCGSource(3, 5)
	rng := rand.New(src)
	rng.Perm(64)
	rng.Float64()
	state, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wantPerm := rng.Perm(32)
	wantF := rng.Float64()

	src2 := NewPCGSource(9, 9)
	if err := src2.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(src2)
	gotPerm := rng2.Perm(32)
	for i := range wantPerm {
		if gotPerm[i] != wantPerm[i] {
			t.Fatalf("Perm diverged at %d: %v vs %v", i, gotPerm, wantPerm)
		}
	}
	if gotF := rng2.Float64(); gotF != wantF {
		t.Fatalf("Float64 after restore = %v, want %v", gotF, wantF)
	}
}

// Options.Src alone must be enough to build a tuner, and runs from the same
// source seeds must be identical to runs from an equally-seeded Rng built
// from the same source.
func TestNewWithSrcOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := synthPool(rng, 120)

	runWith := func(opt Options) *Result {
		t.Helper()
		tn, err := New(pool, poolEval(pool, synthObj, nil), opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a := runWith(Options{NumObjectives: 2, InitTarget: 8, MaxIter: 40, Src: NewPCGSource(6, 6)})
	b := runWith(Options{NumObjectives: 2, InitTarget: 8, MaxIter: 40, Rng: rand.New(NewPCGSource(6, 6))})
	if a.Runs != b.Runs || len(a.ParetoIdx) != len(b.ParetoIdx) {
		t.Fatalf("Src-built and Rng-built runs diverged: %d/%d runs, %d/%d Pareto",
			a.Runs, b.Runs, len(a.ParetoIdx), len(b.ParetoIdx))
	}
	for i := range a.ParetoIdx {
		if a.ParetoIdx[i] != b.ParetoIdx[i] {
			t.Fatalf("Pareto sets diverged: %v vs %v", a.ParetoIdx, b.ParetoIdx)
		}
	}

	if _, err := New(pool, poolEval(pool, synthObj, nil), Options{NumObjectives: 2}); err == nil {
		t.Fatal("tuner built without Rng or Src")
	}
}

// RandState exports the source state when it is serialisable and reports
// progress via Iters; a bare Rng yields (nil, nil).
func TestTunerRandStateExport(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pool := synthPool(rng, 120)

	tn, err := New(pool, poolEval(pool, synthObj, nil), Options{
		NumObjectives: 2, InitTarget: 8, MaxIter: 30, Src: NewPCGSource(2, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(); err != nil {
		t.Fatal(err)
	}
	state, err := tn.RandState()
	if err != nil {
		t.Fatal(err)
	}
	if state == nil {
		t.Fatal("RandState = nil for a PCG-backed tuner")
	}
	if tn.Iters() <= 0 {
		t.Errorf("Iters = %d after a completed run", tn.Iters())
	}

	tn2, err := New(pool, poolEval(pool, synthObj, nil), Options{
		NumObjectives: 2, InitTarget: 8, MaxIter: 30, Rng: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	state2, err := tn2.RandState()
	if err != nil {
		t.Fatal(err)
	}
	if state2 != nil {
		t.Fatalf("RandState = %v for a bare-Rng tuner, want nil", state2)
	}
}
