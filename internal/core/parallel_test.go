package core

import (
	"math/rand"
	"testing"
)

// TestParallelTunerMatchesSerial: the sharded region updates, sharded
// classification passes and concurrent per-objective fits must reproduce the
// fully serial tuner bit-for-bit — same seed, same evaluations, same final
// classification of every candidate — for any worker count, including one
// larger than Batch.
func TestParallelTunerMatchesSerial(t *testing.T) {
	pool := synthPool(rand.New(rand.NewSource(41)), 200)
	run := func(workers int) *Result {
		rng := rand.New(rand.NewSource(42))
		opt := defaultOpts(rng)
		opt.Batch = 2
		opt.Workers = workers
		opt.MaxIter = 25
		tn, err := New(pool, poolEval(pool, synthObj, nil), opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if serial.Runs != parallel.Runs || serial.Iters != parallel.Iters {
		t.Fatalf("serial %d runs/%d iters, parallel %d/%d",
			serial.Runs, serial.Iters, parallel.Runs, parallel.Iters)
	}
	if len(serial.EvaluatedIdx) != len(parallel.EvaluatedIdx) {
		t.Fatalf("evaluation counts differ: %d vs %d", len(serial.EvaluatedIdx), len(parallel.EvaluatedIdx))
	}
	for k := range serial.EvaluatedIdx {
		if serial.EvaluatedIdx[k] != parallel.EvaluatedIdx[k] {
			t.Fatalf("evaluation order diverges at step %d: %d vs %d",
				k, serial.EvaluatedIdx[k], parallel.EvaluatedIdx[k])
		}
	}
	if len(serial.ParetoIdx) != len(parallel.ParetoIdx) {
		t.Fatalf("pareto sizes differ: %d vs %d", len(serial.ParetoIdx), len(parallel.ParetoIdx))
	}
	for k := range serial.ParetoIdx {
		if serial.ParetoIdx[k] != parallel.ParetoIdx[k] {
			t.Fatalf("pareto sets differ at position %d: %d vs %d",
				k, serial.ParetoIdx[k], parallel.ParetoIdx[k])
		}
	}
	for i := range serial.Status {
		if serial.Status[i] != parallel.Status[i] {
			t.Fatalf("candidate %d classified %d serially but %d in parallel",
				i, serial.Status[i], parallel.Status[i])
		}
	}
	for k := range serial.Rho {
		if serial.Rho[k] != parallel.Rho[k] {
			t.Fatalf("objective %d learned rho %g serially but %g in parallel",
				k, serial.Rho[k], parallel.Rho[k])
		}
	}
}
