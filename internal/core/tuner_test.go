package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ppatuner/internal/pareto"
)

// synthetic bi-objective problem: a trade-off along x0 with multimodal
// ripples, so a handful of samples cannot pin the surface down and the
// active-learning loop has real work to do.
func synthObj(x []float64) []float64 {
	f1 := x[0] + 0.25*x[1]*x[1] + 0.15*math.Sin(5*x[0]+3*x[1])
	f2 := 1 - x[0] + 0.25*(1-x[1])*(1-x[1]) + 0.15*math.Cos(4*x[0]-2*x[1])
	return []float64{f1, f2}
}

func synthPool(rng *rand.Rand, n int) [][]float64 {
	pool := make([][]float64, n)
	for i := range pool {
		pool[i] = []float64{rng.Float64(), rng.Float64()}
	}
	return pool
}

func poolEval(pool [][]float64, f func([]float64) []float64, count *int) Evaluator {
	return func(i int) ([]float64, error) {
		if count != nil {
			*count++
		}
		return f(pool[i]), nil
	}
}

func defaultOpts(rng *rand.Rand) Options {
	return Options{
		NumObjectives: 2,
		InitTarget:    8,
		MaxIter:       120,
		Rng:           rng,
		FitMaxEvals:   80,
		FitSubsample:  60,
	}
}

func TestTunerFindsParetoFront(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := synthPool(rng, 150)
	var evals int
	tn, err := New(pool, poolEval(pool, synthObj, &evals), defaultOpts(rng))
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ParetoIdx) == 0 {
		t.Fatal("no Pareto candidates returned")
	}
	if res.Runs != evals {
		t.Errorf("Runs = %d, evaluator saw %d", res.Runs, evals)
	}
	if res.Runs >= len(pool) {
		t.Errorf("tuner evaluated the whole pool (%d runs)", res.Runs)
	}

	// Quality: the returned set's golden vectors must approximate the true
	// pool front well.
	all := make([][]float64, len(pool))
	for i := range pool {
		all[i] = synthObj(pool[i])
	}
	golden := pareto.FrontPoints(all)
	approx := make([][]float64, 0, len(res.ParetoIdx))
	for _, i := range res.ParetoIdx {
		approx = append(approx, synthObj(pool[i]))
	}
	// Quality bars near the paper's own reported bands (HV error ≈ 0.05–0.1,
	// ADRS ≈ 0.04–0.1).
	adrs := pareto.ADRS(golden, approx)
	if adrs > 0.12 {
		t.Errorf("ADRS = %g, want <= 0.12", adrs)
	}
	ref := pareto.ReferencePoint(all, 0.1)
	if hv := pareto.HVError(golden, approx, ref); hv > 0.15 {
		t.Errorf("hyper-volume error = %g, want <= 0.15", hv)
	}
}

func TestTunerDeterministicGivenSeed(t *testing.T) {
	run := func() *Result {
		rng := rand.New(rand.NewSource(42))
		pool := synthPool(rand.New(rand.NewSource(7)), 60)
		tn, err := New(pool, poolEval(pool, synthObj, nil), defaultOpts(rng))
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Runs != b.Runs || len(a.ParetoIdx) != len(b.ParetoIdx) {
		t.Fatalf("non-deterministic: %d/%d runs, %d/%d pareto", a.Runs, b.Runs, len(a.ParetoIdx), len(b.ParetoIdx))
	}
	for i := range a.ParetoIdx {
		if a.ParetoIdx[i] != b.ParetoIdx[i] {
			t.Fatal("pareto sets differ between identical runs")
		}
	}
}

func TestTunerAllDecidedOnConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := synthPool(rng, 80)
	opt := defaultOpts(rng)
	opt.MaxIter = 500 // plenty to converge
	tn, err := New(pool, poolEval(pool, synthObj, nil), opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= opt.MaxIter {
		t.Skip("did not converge within budget; cannot assert full classification")
	}
	for i, s := range res.Status {
		if s == Undecided {
			t.Fatalf("candidate %d still undecided after convergence", i)
		}
	}
}

func TestTunerBatchSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := synthPool(rng, 100)
	opt := defaultOpts(rng)
	opt.Batch = 4
	tn, err := New(pool, poolEval(pool, synthObj, nil), opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ParetoIdx) == 0 {
		t.Fatal("batch run returned nothing")
	}
	// Batch mode must evaluate in multiples after the init phase.
	if res.Runs <= opt.InitTarget {
		t.Errorf("batch run only used init evaluations (%d)", res.Runs)
	}
}

// TestTunerTransferHelpsAtFixedBudget: with source knowledge of a
// near-identical task and a tight evaluation budget, the transfer tuner must
// deliver a better Pareto approximation than the plain tuner — the paper's
// central claim — and the learned task correlation must be positive.
func TestTunerTransferHelpsAtFixedBudget(t *testing.T) {
	poolRng := rand.New(rand.NewSource(8))
	pool := synthPool(poolRng, 120)

	srcF := func(x []float64) []float64 {
		y := synthObj(x)
		return []float64{y[0] * 1.01, y[1] * 1.01} // near-identical source task
	}
	srcX := synthPool(rand.New(rand.NewSource(9)), 80)
	srcY := make([][]float64, 2)
	for _, x := range srcX {
		y := srcF(x)
		srcY[0] = append(srcY[0], y[0])
		srcY[1] = append(srcY[1], y[1])
	}

	all := make([][]float64, len(pool))
	for i := range pool {
		all[i] = synthObj(pool[i])
	}
	golden := pareto.FrontPoints(all)

	runWith := func(seed int64, withSource bool) (*Result, float64) {
		rng := rand.New(rand.NewSource(seed))
		opt := defaultOpts(rng)
		opt.MaxIter = 15 // tight tool-run budget: init 8 + 15
		if withSource {
			opt.SourceX = srcX
			opt.SourceY = srcY
		}
		tn, err := New(pool, poolEval(pool, synthObj, nil), opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			t.Fatal(err)
		}
		approx := make([][]float64, 0, len(res.ParetoIdx))
		for _, i := range res.ParetoIdx {
			approx = append(approx, synthObj(pool[i]))
		}
		return res, pareto.ADRS(golden, approx)
	}

	var adrsT, adrsP float64
	var lastT *Result
	for seed := int64(10); seed < 14; seed++ {
		rt, at := runWith(seed, true)
		_, ap := runWith(seed, false)
		adrsT += at
		adrsP += ap
		lastT = rt
	}
	if !(adrsT < adrsP) {
		t.Errorf("at a fixed budget, transfer ADRS %g !< plain ADRS %g (summed over 4 seeds)", adrsT, adrsP)
	}
	for k, rho := range lastT.Rho {
		if rho < 0.2 {
			t.Errorf("objective %d: learned rho = %g, want positive for near-identical tasks", k, rho)
		}
	}
}

func TestTunerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pool := synthPool(rng, 10)
	ev := poolEval(pool, synthObj, nil)
	good := defaultOpts(rng)

	if _, err := New(nil, ev, good); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := New(pool, nil, good); err == nil {
		t.Error("nil evaluator accepted")
	}
	bad := good
	bad.NumObjectives = 0
	if _, err := New(pool, ev, bad); err == nil {
		t.Error("zero objectives accepted")
	}
	bad = good
	bad.Rng = nil
	if _, err := New(pool, ev, bad); err == nil {
		t.Error("nil rng accepted")
	}
	bad = good
	bad.SourceX = [][]float64{{1, 2}}
	bad.SourceY = [][]float64{{1}}
	if _, err := New(pool, ev, bad); err == nil {
		t.Error("SourceY objective-count mismatch accepted")
	}
	bad = good
	bad.SourceX = [][]float64{{1, 2}}
	bad.SourceY = [][]float64{{1, 2}, {3}}
	if _, err := New(pool, ev, bad); err == nil {
		t.Error("SourceY length mismatch accepted")
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := New(ragged, ev, good); err == nil {
		t.Error("ragged pool accepted")
	}
}

func TestTunerEvaluatorErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pool := synthPool(rng, 20)
	boom := errors.New("license server down")
	ev := func(i int) ([]float64, error) { return nil, boom }
	tn, err := New(pool, ev, defaultOpts(rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(); !errors.Is(err, boom) {
		t.Errorf("Run error = %v, want wrapped %v", err, boom)
	}
}

func TestTunerEvaluatorWrongDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := synthPool(rng, 20)
	ev := func(i int) ([]float64, error) { return []float64{1}, nil }
	tn, err := New(pool, ev, defaultOpts(rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Run(); err == nil {
		t.Error("wrong-dimension evaluator accepted")
	}
}

func TestDeltaControlsPrecision(t *testing.T) {
	pool := synthPool(rand.New(rand.NewSource(30)), 100)
	run := func(deltaFrac float64) *Result {
		rng := rand.New(rand.NewSource(31))
		opt := defaultOpts(rng)
		opt.DeltaFrac = deltaFrac
		opt.MaxIter = 400
		tn, err := New(pool, poolEval(pool, synthObj, nil), opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	coarse := run(0.15)
	fine := run(0.01)
	// A looser δ must not need more tool runs than a tight one.
	if coarse.Runs > fine.Runs {
		t.Errorf("coarse δ used %d runs, fine δ %d — precision knob inverted", coarse.Runs, fine.Runs)
	}
}

func TestDominatesVec(t *testing.T) {
	if !dominatesVec([]float64{1, 1}, []float64{2, 2}) {
		t.Error("clear domination missed")
	}
	if dominatesVec([]float64{1, 1}, []float64{1, 1}) {
		t.Error("equal vectors dominate")
	}
	if dominatesVec([]float64{1, 3}, []float64{2, 2}) {
		t.Error("incomparable vectors dominate")
	}
}

func TestDiameterScaling(t *testing.T) {
	// White-box: a tuner with known regions must measure scaled diameters.
	tn := &Tuner{
		scale: []float64{2, 4},
		lo:    [][]float64{{0, 0}},
		hi:    [][]float64{{2, 4}},
	}
	if d := tn.diameter(0); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("diameter = %g, want sqrt(2)", d)
	}
}
