// Quickstart: tune the physical-design flow on the small MAC design in
// power-vs-delay space with PPATuner, from scratch, in a couple of minutes.
//
// This example builds a small candidate pool by Latin-hypercube sampling the
// Target1 parameter space, lets PPATuner pick which configurations to send
// through the flow simulator, and prints the Pareto-optimal tool settings it
// finds — including how much of the pool it never had to evaluate.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppatuner"
	"ppatuner/internal/sample"
)

func main() {
	design := ppatuner.SmallMAC()
	space := ppatuner.Target1Space()
	rng := rand.New(rand.NewSource(7))

	// Candidate pool: 160 Latin-hypercube configurations. In a real session
	// this is the exported "what-if" list a designer wants ranked.
	cfgs := sample.LHSConfigs(rng, space, 160)
	pool := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		pool[i] = c.Unit()
	}

	objs := []ppatuner.Metric{ppatuner.Power, ppatuner.Delay}
	toolRuns := 0
	evaluate := func(i int) ([]float64, error) {
		toolRuns++
		q, _, err := ppatuner.RunFlow(design, cfgs[i])
		if err != nil {
			return nil, err
		}
		return q.Vector(objs), nil
	}

	tn, err := ppatuner.NewTuner(pool, evaluate, ppatuner.TunerOptions{
		NumObjectives: len(objs),
		InitTarget:    12,
		MaxIter:       60,
		Rng:           rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pool: %d configurations, tool runs spent: %d (%.0f%% of the pool untouched)\n",
		len(pool), res.Runs, 100*float64(len(pool)-res.Runs)/float64(len(pool)))
	fmt.Printf("predicted Pareto-optimal settings: %d\n\n", len(res.ParetoIdx))
	fmt.Println("power(mW)  delay(ns)  configuration")
	for _, i := range res.ParetoIdx {
		q, _, err := ppatuner.RunFlow(design, cfgs[i])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.3f  %9.4f  %s\n", q.PowerMW, q.DelayNS, cfgs[i])
	}
}
