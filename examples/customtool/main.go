// Customtool: wire your own EDA tool into PPATuner.
//
// PPATuner only needs two things from you: a parameter Space describing your
// tool's knobs, and an Evaluator that invokes the tool for a configuration
// and returns the QoR objective vector. This example defines a 4-parameter
// synthesis-like tool with an analytic QoR model standing in for the real
// binary — replace `runMyTool` with a call into your flow scripts and
// everything else stays the same.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"ppatuner"
	"ppatuner/internal/sample"
)

// runMyTool pretends to be your tool: it maps a configuration to
// (runtime-weighted energy, slack-derived delay). Swap this out for an
// exec.Command into your own flow.
func runMyTool(cfg ppatuner.Config) (energy, delay float64) {
	effort := 0.0
	if cfg.Enum("effort") == "high" {
		effort = 1
	}
	vdd := cfg.Float("vdd")
	gates := float64(cfg.Int("max_gates"))
	retime := 0.0
	if cfg.Bool("retime") {
		retime = 1
	}
	delay = 2.2 - 0.9*(vdd-0.6)/0.4 - 0.25*effort - 0.15*retime + 0.3*math.Sin(gates/4000)
	energy = 0.8 + 2.2*vdd*vdd + 0.35*effort + 0.2*retime + gates/30000
	return energy, delay
}

func main() {
	space, err := ppatuner.NewSpace("my-synth-tool", []ppatuner.Param{
		{Name: "vdd", Kind: ppatuner.Float, Min: 0.6, Max: 1.0},
		{Name: "effort", Kind: ppatuner.Enum, Levels: []string{"normal", "high"}},
		{Name: "max_gates", Kind: ppatuner.Int, Min: 5000, Max: 30000},
		{Name: "retime", Kind: ppatuner.Bool},
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	cfgs := sample.LHSConfigs(rng, space, 120)
	pool := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		pool[i] = c.Unit()
	}

	evaluate := func(i int) ([]float64, error) {
		e, d := runMyTool(cfgs[i])
		return []float64{e, d}, nil
	}

	tn, err := ppatuner.NewTuner(pool, evaluate, ppatuner.TunerOptions{
		NumObjectives: 2,
		InitTarget:    10,
		MaxIter:       50,
		Rng:           rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("evaluated %d of %d configurations; %d Pareto-optimal settings:\n\n",
		res.Runs, len(pool), len(res.ParetoIdx))
	fmt.Println("energy     delay      configuration")
	for _, i := range res.ParetoIdx {
		e, d := runMyTool(cfgs[i])
		fmt.Printf("%8.3f  %8.3f   %s\n", e, d, cfgs[i])
	}
}
