// Customtool: wire your own EDA tool into PPATuner — with fault tolerance.
//
// PPATuner only needs two things from you: a parameter Space describing your
// tool's knobs, and an Evaluator that invokes the tool for a configuration
// and returns the QoR objective vector. This example defines a 4-parameter
// synthesis-like tool with an analytic QoR model standing in for the real
// binary — replace `runMyTool` with a call into your flow scripts and
// everything else stays the same.
//
// Real tools fail: licences drop, runs hang, wrappers crash. The example
// therefore models a *flaky* tool (a transient failure every few calls and
// the odd hang) and hardens it with ppatuner.WrapEvaluator: a per-run
// context, a per-evaluation deadline, bounded retries with backoff, and a
// skip policy so a configuration the tool simply cannot complete is
// surrendered (marked Failed in the result) instead of killing the run.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"ppatuner"
	"ppatuner/internal/sample"
)

// runMyTool pretends to be your tool: it maps a configuration to
// (runtime-weighted energy, slack-derived delay). Swap this out for an
// exec.CommandContext into your own flow — pass ctx along so a deadline
// kills the tool process.
func runMyTool(cfg ppatuner.Config) (energy, delay float64) {
	effort := 0.0
	if cfg.Enum("effort") == "high" {
		effort = 1
	}
	vdd := cfg.Float("vdd")
	gates := float64(cfg.Int("max_gates"))
	retime := 0.0
	if cfg.Bool("retime") {
		retime = 1
	}
	delay = 2.2 - 0.9*(vdd-0.6)/0.4 - 0.25*effort - 0.15*retime + 0.3*math.Sin(gates/4000)
	energy = 0.8 + 2.2*vdd*vdd + 0.35*effort + 0.2*retime + gates/30000
	return energy, delay
}

func main() {
	space, err := ppatuner.NewSpace("my-synth-tool", []ppatuner.Param{
		{Name: "vdd", Kind: ppatuner.Float, Min: 0.6, Max: 1.0},
		{Name: "effort", Kind: ppatuner.Enum, Levels: []string{"normal", "high"}},
		{Name: "max_gates", Kind: ppatuner.Int, Min: 5000, Max: 30000},
		{Name: "retime", Kind: ppatuner.Bool},
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	cfgs := sample.LHSConfigs(rng, space, 120)
	pool := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		pool[i] = c.Unit()
	}

	// The raw tool invocation: flaky on purpose. Every 7th call drops its
	// licence (transient — a retry succeeds), and every 23rd call hangs past
	// the deadline before failing.
	var calls atomic.Int64
	tool := func(ctx context.Context, i int) ([]float64, error) {
		n := calls.Add(1)
		switch {
		case n%23 == 0:
			select { // a hang: the per-evaluation deadline cuts it short
			case <-time.After(10 * time.Second):
			case <-ctx.Done():
			}
			return nil, errors.New("tool run stalled")
		case n%7 == 0:
			return nil, errors.New("licence checkout failed")
		}
		e, d := runMyTool(cfgs[i])
		return []float64{e, d}, nil
	}

	// Harden it: deadline + 3 retries with backoff + skip policy + log.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	flog := &ppatuner.FailureLog{}
	re, err := ppatuner.NewResilientEvaluator(ctx, tool, ppatuner.ResilientOptions{
		Timeout:       200 * time.Millisecond,
		MaxRetries:    3,
		Backoff:       10 * time.Millisecond,
		Policy:        ppatuner.PolicySkip,
		NumObjectives: 2,
		Log:           flog,
	})
	if err != nil {
		log.Fatal(err)
	}

	tn, err := ppatuner.NewTuner(pool, re.Evaluate, ppatuner.TunerOptions{
		NumObjectives: 2,
		InitTarget:    10,
		MaxIter:       50,
		Rng:           rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tn.RunContext(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("evaluated %d of %d configurations (%d skipped as failed); %d Pareto-optimal settings\n",
		res.Runs, len(pool), len(res.FailedIdx), len(res.ParetoIdx))
	fmt.Printf("tool failures seen: %s\n\n", flog.Summary())
	fmt.Println("energy     delay      configuration")
	for _, i := range res.ParetoIdx {
		e, d := runMyTool(cfgs[i])
		fmt.Printf("%8.3f  %8.3f   %s\n", e, d, cfgs[i])
	}
}
