// Batch: the paper's Sec. 3.3 licence parallelism — "our approach also
// supports batch trials ... we have several software licenses so that the
// parallel trials are supported when enquiring the physical design tool".
//
// This example tunes the small MAC with batch sizes 1 and 4. With B
// licences, each tuning iteration dispatches the B longest-diameter
// candidates to the tool simultaneously, so wall-clock cost is measured in
// *iterations* (batches) rather than tool runs. The example reports both
// and shows the trade: batching cuts iterations roughly B-fold at a small
// cost in total tool runs, since selections within a batch cannot react to
// each other's results.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppatuner"
	"ppatuner/internal/sample"
)

func main() {
	design := ppatuner.SmallMAC()
	space := ppatuner.Target1Space()

	poolRng := rand.New(rand.NewSource(5))
	cfgs := sample.LHSConfigs(poolRng, space, 140)
	pool := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		pool[i] = c.Unit()
	}
	objs := []ppatuner.Metric{ppatuner.Power, ppatuner.Delay}

	// Golden reference for quality scoring (exhaustive — only viable because
	// this is a demo-sized pool).
	all := make([][]float64, len(pool))
	for i := range pool {
		q, _, err := ppatuner.RunFlow(design, cfgs[i])
		if err != nil {
			log.Fatal(err)
		}
		all[i] = q.Vector(objs)
	}
	golden := ppatuner.ParetoFront(all)
	ref := ppatuner.ReferencePoint(all, 0.1)

	for _, batch := range []int{1, 4} {
		evaluate := func(i int) ([]float64, error) { return all[i], nil }
		tn, err := ppatuner.NewTuner(pool, evaluate, ppatuner.TunerOptions{
			NumObjectives: len(objs),
			InitTarget:    12,
			MaxIter:       48,
			Batch:         batch,
			Rng:           rand.New(rand.NewSource(8)),
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			log.Fatal(err)
		}
		var approx [][]float64
		for _, i := range res.ParetoIdx {
			approx = append(approx, all[i])
		}
		approx = ppatuner.ParetoFront(approx)
		fmt.Printf("batch=%d licences: %3d tool runs over %3d iterations  hv-error=%.4f adrs=%.4f\n",
			batch, res.Runs, res.Iters, ppatuner.HVError(golden, approx, ref), ppatuner.ADRS(golden, approx))
	}
}
