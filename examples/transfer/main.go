// Transfer: the paper's Scenario Two — reuse tuning knowledge from a small
// design (Source2) when tuning a larger one of the same family (Target2).
//
// The example runs PPATuner twice on the same Target2 budget: once with 200
// historical Source2 configurations feeding the transfer Gaussian process,
// once without (plain PAL). It reports the Pareto quality both achieve and
// the task correlation ρ the transfer kernel learned, demonstrating that
// the source knowledge buys a better front at the same tool cost.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppatuner"
)

func main() {
	src, err := ppatuner.Source2()
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := ppatuner.Target2()
	if err != nil {
		log.Fatal(err)
	}
	objs := []ppatuner.Metric{ppatuner.Power, ppatuner.Delay}

	pool := tgt.UnitX()
	objVecs := tgt.Objectives(objs)
	evaluate := func(i int) ([]float64, error) { return objVecs[i], nil }

	// Historical data: 200 Source2 configurations re-encoded into Target2's
	// normalised coordinates (same knobs, different ranges).
	rng := rand.New(rand.NewSource(3))
	sx := make([][]float64, 0, 200)
	sy := make([][]float64, len(objs))
	for _, j := range rng.Perm(src.N())[:200] {
		p := src.Points[j]
		sx = append(sx, p.Config.EncodeInto(tgt.Space))
		for k, m := range objs {
			sy[k] = append(sy[k], p.QoR.Get(m))
		}
	}

	golden := ppatuner.ParetoFront(objVecs)
	ref := ppatuner.ReferencePoint(objVecs, 0.10)
	score := func(idx []int) (hv, adrs float64) {
		var approx [][]float64
		for _, i := range idx {
			approx = append(approx, objVecs[i])
		}
		approx = ppatuner.ParetoFront(approx)
		return ppatuner.HVError(golden, approx, ref), ppatuner.ADRS(golden, approx)
	}

	run := func(withSource bool) {
		opt := ppatuner.TunerOptions{
			NumObjectives: len(objs),
			InitTarget:    14,
			MaxIter:       51, // 65 tool runs total, as in the paper's Table 3 band
			ARD:           true,
			Rng:           rand.New(rand.NewSource(9)),
		}
		label := "plain PAL (no history)"
		if withSource {
			opt.SourceX = sx
			opt.SourceY = sy
			label = "PPATuner (200 Source2 points)"
		}
		tn, err := ppatuner.NewTuner(pool, evaluate, opt)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			log.Fatal(err)
		}
		hv, adrs := score(res.ParetoIdx)
		fmt.Printf("%-32s runs=%-3d hv-error=%.4f adrs=%.4f", label, res.Runs, hv, adrs)
		if withSource {
			fmt.Printf("  learned rho=%.2f/%.2f", res.Rho[0], res.Rho[1])
		}
		fmt.Println()
	}

	fmt.Printf("Target2: %d candidate configurations, golden power-delay front: %d points\n\n", tgt.N(), len(golden))
	run(true)
	run(false)
}
