// Package-level tests exercising the public facade end to end: a user
// driving the library exactly as the README shows.
package ppatuner_test

import (
	"math/rand"
	"testing"

	"ppatuner"
)

func TestFacadeSpacesAndFlow(t *testing.T) {
	space := ppatuner.Target1Space()
	if space.Dim() != 12 {
		t.Fatalf("Target1 space dim = %d, want 12", space.Dim())
	}
	u := make([]float64, space.Dim())
	for i := range u {
		u[i] = 0.5
	}
	cfg := space.MustConfig(u)
	q, rep, err := ppatuner.RunFlow(ppatuner.SmallMAC(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if q.PowerMW <= 0 || q.DelayNS <= 0 || q.AreaUm2 <= 0 {
		t.Fatalf("degenerate QoR %+v", q)
	}
	if rep.Timing == nil {
		t.Fatal("missing timing report")
	}
	v := q.Vector([]ppatuner.Metric{ppatuner.Delay, ppatuner.Power})
	if v[0] != q.DelayNS || v[1] != q.PowerMW {
		t.Error("Vector projection wrong")
	}
}

func TestFacadeCustomSpaceAndTuner(t *testing.T) {
	space, err := ppatuner.NewSpace("toy", []ppatuner.Param{
		{Name: "x", Kind: ppatuner.Float, Min: 0, Max: 1},
		{Name: "y", Kind: ppatuner.Float, Min: 0, Max: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pool := make([][]float64, 60)
	for i := range pool {
		pool[i] = []float64{rng.Float64(), rng.Float64()}
	}
	_ = space
	evaluate := func(i int) ([]float64, error) {
		return []float64{pool[i][0], 1 - pool[i][0] + pool[i][1]}, nil
	}
	tn, err := ppatuner.NewTuner(pool, evaluate, ppatuner.TunerOptions{
		NumObjectives: 2, InitTarget: 8, MaxIter: 30, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ParetoIdx) == 0 || res.Runs == 0 {
		t.Fatalf("facade tuner returned nothing: %+v", res)
	}
}

func TestFacadeMetrics(t *testing.T) {
	golden := [][]float64{{1, 3}, {2, 2}, {3, 1}}
	if !ppatuner.Dominates([]float64{1, 1}, []float64{2, 2}) {
		t.Error("Dominates wrong")
	}
	front := ppatuner.ParetoFront([][]float64{{1, 1}, {2, 2}})
	if len(front) != 1 {
		t.Errorf("ParetoFront size %d", len(front))
	}
	ref := ppatuner.ReferencePoint(golden, 0.1)
	if hv := ppatuner.Hypervolume(golden, ref); hv <= 0 {
		t.Errorf("Hypervolume = %g", hv)
	}
	if e := ppatuner.HVError(golden, golden, ref); e != 0 {
		t.Errorf("HVError(g,g) = %g", e)
	}
	if a := ppatuner.ADRS(golden, golden); a != 0 {
		t.Errorf("ADRS(g,g) = %g", a)
	}
	if rho := ppatuner.TransferFactor(0, 1); rho != 1 {
		t.Errorf("TransferFactor(0,1) = %g", rho)
	}
}

func TestFacadeDatasetGeneration(t *testing.T) {
	ds, err := ppatuner.GenerateDataset("facade-test", ppatuner.Source2Space(), ppatuner.SmallMAC(),
		ppatuner.GenOptions{Points: 25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 25 {
		t.Fatalf("dataset N = %d", ds.N())
	}
	front := ds.GoldenFront([]ppatuner.Metric{ppatuner.Power, ppatuner.Delay})
	if len(front) == 0 {
		t.Fatal("empty golden front")
	}
}

func TestFacadeHarnessTypes(t *testing.T) {
	if len(ppatuner.ObjSpaces()) != 3 {
		t.Error("objective spaces wrong")
	}
	if len(ppatuner.Methods()) != 5 {
		t.Error("methods wrong")
	}
}
