module ppatuner

go 1.22
