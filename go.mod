module ppatuner

go 1.23
