// Command ablate runs the PPATuner design-choice ablations of DESIGN.md on
// Scenario Two: transfer on/off, δ sweep, τ sweep, source-data size, and
// batch selection.
//
// Usage:
//
//	ablate [-seeds N] [-space power-delay]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ppatuner"
	"ppatuner/internal/core"
	"ppatuner/internal/eval"
)

func main() {
	nSeeds := flag.Int("seeds", 2, "seeds to average over")
	spaceName := flag.String("space", "power-delay", "objective space")
	flag.Parse()

	s, err := ppatuner.ScenarioTwo()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
		os.Exit(1)
	}
	var space ppatuner.ObjSpace
	for _, sp := range ppatuner.ObjSpaces() {
		if strings.EqualFold(strings.ReplaceAll(sp.Name, "-", ""), strings.ReplaceAll(*spaceName, "-", "")) {
			space = sp
		}
	}
	if space.Name == "" {
		fmt.Fprintf(os.Stderr, "ablate: unknown space %q\n", *spaceName)
		os.Exit(2)
	}
	seeds := make([]int64, *nSeeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	type variant = struct {
		Name   string
		Mutate func(*core.Options)
	}
	groups := []struct {
		title    string
		variants []variant
	}{
		{"Transfer kernel (Eq. 7)", []variant{
			{"transfer-on", func(o *core.Options) {}},
			{"transfer-off", func(o *core.Options) { o.SourceX, o.SourceY = nil, nil }},
		}},
		{"Relaxation δ (Eq. 11/12)", []variant{
			{"delta=0.01", func(o *core.Options) { o.DeltaFrac = 0.01 }},
			{"delta=0.05", func(o *core.Options) { o.DeltaFrac = 0.05 }},
			{"delta=0.15", func(o *core.Options) { o.DeltaFrac = 0.15 }},
		}},
		{"Region scaling τ (Eq. 9)", []variant{
			{"tau=2.25", func(o *core.Options) { o.Tau = 2.25 }},
			{"tau=4", func(o *core.Options) { o.Tau = 4 }},
			{"tau=9", func(o *core.Options) { o.Tau = 9 }},
		}},
		{"Source-data volume", []variant{
			{"src=50", func(o *core.Options) { trimSource(o, 50) }},
			{"src=100", func(o *core.Options) { trimSource(o, 100) }},
			{"src=200", func(o *core.Options) {}},
		}},
		{"Batch selection (Sec. 3.3)", []variant{
			{"batch=1", func(o *core.Options) { o.Batch = 1 }},
			{"batch=4", func(o *core.Options) { o.Batch = 4 }},
		}},
	}
	for _, g := range groups {
		fmt.Println("==", g.title)
		rep, err := eval.AblationReport(s, space, seeds, g.variants)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablate: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep)
	}
}

func trimSource(o *core.Options, n int) {
	if n > len(o.SourceX) {
		return
	}
	o.SourceX = o.SourceX[:n]
	for k := range o.SourceY {
		o.SourceY[k] = o.SourceY[k][:n]
	}
}
