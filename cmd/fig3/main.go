// Command fig3 regenerates the paper's Figure 3: the golden Pareto front of
// the Target2 benchmark versus the front PPATuner learns, in power-vs-delay
// space. It prints both series as CSV and renders an ASCII scatter plot.
//
// Usage:
//
//	fig3 [-seed N] [-csv PATH] [-json PATH] [-workers N]
//	     [-checkpoint FILE [-resume]]
//
// -checkpoint persists every paid-for observation plus the tuner's RNG
// state (checkpoint schema v2) so a killed run, restarted with -resume,
// replays from the file instead of re-running the tool; -workers bounds
// the engine's concurrency (identical output for any value).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"ppatuner"
	"ppatuner/internal/eval"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "optional path to write the two series as CSV")
	jsonPath := flag.String("json", "", "optional path to write the two series as JSON")
	workers := flag.Int("workers", 0, "tuner concurrency (0 = engine default; identical output for any value)")
	ckptPath := flag.String("checkpoint", "", "schema-v2 checkpoint file: observations and RNG state persist there")
	resume := flag.Bool("resume", false, "continue from an existing -checkpoint file (without it, a pre-existing file is an error)")
	flag.Parse()

	opts := ppatuner.HarnessRunOpts{Workers: *workers}
	var ck *ppatuner.EvalCheckpoint
	if *ckptPath != "" {
		if !*resume {
			if fi, err := os.Stat(*ckptPath); err == nil && fi.Size() > 0 {
				fmt.Fprintf(os.Stderr, "fig3: checkpoint %s already exists; pass -resume to continue it or remove the file\n", *ckptPath)
				os.Exit(2)
			}
		}
		var err error
		ck, err = ppatuner.LoadCheckpoint(*ckptPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig3: %v\n", err)
			os.Exit(1)
		}
		// Restore the recorded RNG state when resuming; otherwise record the
		// fresh source's starting state so a later resume does not depend on
		// re-deriving the generator from the seed.
		src := eval.Figure3Source(*seed)
		if state := ck.RandState(); state != nil {
			if err := src.UnmarshalBinary(state); err != nil {
				fmt.Fprintf(os.Stderr, "fig3: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("checkpoint: resuming with %d cached observations from %s\n", ck.Len(), *ckptPath)
		} else {
			state, err := src.MarshalBinary()
			if err != nil {
				fmt.Fprintf(os.Stderr, "fig3: %v\n", err)
				os.Exit(1)
			}
			if err := ck.SetRandState(state); err != nil {
				fmt.Fprintf(os.Stderr, "fig3: %v\n", err)
				os.Exit(1)
			}
		}
		opts.Src = src
		opts.Wrap = ck.Wrap
	}

	golden, learned, err := ppatuner.Figure3Opts(*seed, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fig3: %v\n", err)
		os.Exit(1)
	}
	if ck != nil {
		hits, misses := ck.Stats()
		fmt.Printf("checkpoint: %d replayed, %d fresh (now %d cached in %s)\n", hits, misses, ck.Len(), *ckptPath)
	}

	var b strings.Builder
	b.WriteString("series,power_mw,delay_ns\n")
	for _, p := range golden {
		fmt.Fprintf(&b, "golden,%.6f,%.6f\n", p[0], p[1])
	}
	for _, p := range learned {
		fmt.Fprintf(&b, "ppatuner,%.6f,%.6f\n", p[0], p[1])
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fig3: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	} else {
		fmt.Print(b.String())
	}

	if *jsonPath != "" {
		doc := struct {
			Seed     int64       `json:"seed"`
			Golden   [][]float64 `json:"golden"`
			PPATuner [][]float64 `json:"ppatuner"`
		}{Seed: *seed, Golden: golden, PPATuner: learned}
		data, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig3: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fig3: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	fmt.Println()
	fmt.Println("Figure 3: Pareto frontiers, power (mW, y) vs delay (ns, x) on Target2")
	fmt.Println("  o = golden front (best in benchmark)   * = PPATuner-learned front")
	fmt.Print(asciiScatter(golden, learned, 72, 22))
}

// asciiScatter renders the two point sets on a character grid.
func asciiScatter(golden, learned [][]float64, w, h int) string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, set := range [][][]float64{golden, learned} {
		for _, p := range set {
			minX = math.Min(minX, p[1])
			maxX = math.Max(maxX, p[1])
			minY = math.Min(minY, p[0])
			maxY = math.Max(maxY, p[0])
		}
	}
	if !(maxX > minX) || !(maxY > minY) {
		return "(degenerate ranges)\n"
	}
	padX := 0.05 * (maxX - minX)
	padY := 0.05 * (maxY - minY)
	minX, maxX = minX-padX, maxX+padX
	minY, maxY = minY-padY, maxY+padY

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	put := func(p []float64, ch byte) {
		c := int((p[1] - minX) / (maxX - minX) * float64(w-1))
		r := int((p[0] - minY) / (maxY - minY) * float64(h-1))
		r = h - 1 - r // y grows upward
		if grid[r][c] != ' ' && grid[r][c] != ch {
			grid[r][c] = '@' // overlap of the two series
			return
		}
		grid[r][c] = ch
	}
	for _, p := range golden {
		put(p, 'o')
	}
	for _, p := range learned {
		put(p, '*')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.3f +%s\n", maxY, strings.Repeat("-", w))
	for _, row := range grid {
		fmt.Fprintf(&b, "%8s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%8.3f +%s\n", minY, strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s%-8.4f%s%8.4f\n", "", minX, strings.Repeat(" ", w-16), maxX)
	return b.String()
}
