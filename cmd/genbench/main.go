// Command genbench generates the paper's offline benchmark datasets
// (Source1, Target1, Source2, Target2 — Table 1) by Latin-hypercube sampling
// the tool parameter spaces and running every configuration through the flow
// simulator. Datasets are written as CSV; -stats prints the Table 1
// parameter statistics instead.
//
// Usage:
//
//	genbench -out DIR [-bench NAME] [-points N] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ppatuner"
)

func main() {
	out := flag.String("out", ".", "output directory for CSV files")
	bench := flag.String("bench", "all", "benchmark to generate: Source1|Target1|Source2|Target2|all")
	stats := flag.Bool("stats", false, "print Table 1 parameter statistics and exit")
	flag.Parse()

	spaces := map[string]*ppatuner.Space{
		"Source1": ppatuner.Source1Space(),
		"Target1": ppatuner.Target1Space(),
		"Source2": ppatuner.Source2Space(),
		"Target2": ppatuner.Target2Space(),
	}
	order := []string{"Source1", "Target1", "Source2", "Target2"}

	if *stats {
		fmt.Println("Table 1: the statistics of parameters of the PD tool on benchmarks")
		for _, name := range order {
			fmt.Printf("\n%s (%d parameters):\n", name, spaces[name].Dim())
			fmt.Println("  parameter\tkind\tmin\tmax")
			for _, row := range spaces[name].Stats() {
				fmt.Println("  " + row)
			}
		}
		return
	}

	gens := map[string]func() (*ppatuner.Dataset, error){
		"Source1": ppatuner.Source1,
		"Target1": ppatuner.Target1,
		"Source2": ppatuner.Source2,
		"Target2": ppatuner.Target2,
	}
	var names []string
	if *bench == "all" {
		names = order
	} else if _, ok := gens[*bench]; ok {
		names = []string{*bench}
	} else {
		fmt.Fprintf(os.Stderr, "genbench: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	for _, name := range names {
		fmt.Printf("generating %s ...\n", name)
		ds, err := gens[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "genbench: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "genbench: %v\n", err)
			os.Exit(1)
		}
		if err := ds.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "genbench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		front := ds.GoldenFront([]ppatuner.Metric{ppatuner.Power, ppatuner.Delay})
		fmt.Printf("  %d points -> %s (power-delay golden front: %d points)\n", ds.N(), path, len(front))
	}
}
