// Command ppaworker is one worker process in a distributed table
// regeneration: it speaks the shard lease protocol on stdin/stdout (the
// default, for workers spawned by ppacoord) or over TCP with -connect, runs
// one granted (space × method × seed) unit at a time through the resilient
// evaluator, and streams every observation back the moment it is paid for —
// so killing a worker forfeits only wall-clock time, never results.
//
// Usage:
//
//	ppaworker [-id NAME] [-connect ADDR[,ADDR...]] [-dial-timeout D] [-rejoin]
//	          [-heartbeat D]
//	          [-outage PERIOD/DOWN] [-breaker N] [-max-outage D] [-chaos-seed N]
//
// With -connect the worker survives coordinator fail-over: the initial
// dial and every reconnection retry with capped exponential backoff
// (deterministic jitter salted by the worker ID), rotating through the
// address list — primary first, standby next — until -dial-timeout of
// continuous failure. On reconnecting it re-introduces itself under the
// new coordinator's generation, names the lease it still holds so the
// unit is re-attached rather than double-granted, and re-streams every
// unacknowledged observation. -rejoin keeps the process alive across
// clean campaign shutdowns (multi-table runs): it redials and serves the
// next campaign, reusing cached benchmark scenarios instead of spending
// ~30s regenerating them.
//
// The outage flags mirror the tables command: they inject correlated
// downtime into this worker's evaluation path and arm a park-mode breaker,
// so units hitting the open breaker are reported as parked failures for the
// coordinator to requeue rather than aborting the campaign.
//
// Everything diagnostic goes to stderr; stdout belongs to the protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ppatuner"
	"ppatuner/internal/eval"
	"ppatuner/internal/shard"
	"ppatuner/internal/shard/transport"
)

func main() {
	id := flag.String("id", "", "worker name used in lease records and coordinator logs (default: w-<pid> with -connect, else assigned by the coordinator)")
	connect := flag.String("connect", "", "coordinator TCP address(es), comma-separated in preference order; empty speaks the protocol on stdin/stdout")
	dialTimeout := flag.Duration("dial-timeout", 2*time.Minute, "give up after this much continuous dial failure (set past the standby's -takeover-after)")
	rejoin := flag.Bool("rejoin", false, "after a clean campaign shutdown, redial and serve the next campaign instead of exiting")
	heartbeat := flag.Duration("heartbeat", 0, "lease renewal period while a unit computes (0 derives a third of the granted TTL)")
	outageSpec := flag.String("outage", "", "inject correlated downtime windows: PERIOD/DOWN (e.g. 60s/10s), empty or \"off\" disables")
	breakerN := flag.Int("breaker", 0, "circuit breaker: trip after N consecutive transient failures and park the unit (0 disables)")
	maxOutage := flag.Duration("max-outage", 5*time.Minute, "abort when one outage episode keeps the breaker open longer than this")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the chaos injector's failure stream")
	gpFlag := flag.String("gp", "exact", "PPATuner surrogate: exact | sparse | sparse:<m> (must match the coordinator's -gp for consistent cells)")
	flag.Parse()

	gpSpec, err := ppatuner.ParseGPSpec(*gpFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppaworker: %v\n", err)
		os.Exit(2)
	}

	wrap, err := buildWrap(*outageSpec, *breakerN, *maxOutage, *chaosSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppaworker: %v\n", err)
		os.Exit(2)
	}

	// The scenario cache outlives individual RunWorker sessions, so a
	// worker that rejoins or reconnects after a coordinator fail-over
	// skips the ~30s benchmark regeneration it already paid for.
	cache := shard.NewScenarioCache(nil)
	opts := shard.WorkerOptions{
		ID:             *id,
		Scenario:       cache.Resolve,
		HeartbeatEvery: *heartbeat,
		Run:            eval.RunOpts{Wrap: wrap, GP: gpSpec},
	}

	if *connect == "" {
		// Stdio workers live exactly as long as their pipe; reconnection
		// is meaningless when the far end owns this process.
		conn := transport.Stream(os.Stdin, os.Stdout)
		defer conn.Close()
		if err := shard.RunWorker(context.Background(), conn, opts); err != nil {
			fmt.Fprintf(os.Stderr, "ppaworker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if opts.ID == "" {
		// Reconnection re-attaches a lease by (epoch, holder), so a remote
		// worker needs an identity that survives redials.
		opts.ID = fmt.Sprintf("w-%d", os.Getpid())
	}
	addrs := strings.Split(*connect, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	// Rotate through the address list across dial attempts: the primary
	// first, the standby next. Reconn serialises Dial calls, so the bare
	// counter is safe.
	next := 0
	dial := func() (shard.Conn, error) {
		addr := addrs[next%len(addrs)]
		next++
		return transport.Dial(addr)
	}
	ctx := context.Background()
	for {
		conn, err := shard.Connect(ctx, shard.ReconnOptions{
			Dial:    dial,
			Backoff: shard.Backoff{Salt: opts.ID},
			MaxDown: *dialTimeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppaworker: %v\n", err)
			os.Exit(1)
		}
		err = shard.RunWorker(ctx, conn, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppaworker: %v\n", err)
			os.Exit(1)
		}
		if !*rejoin {
			return
		}
		fmt.Fprintf(os.Stderr, "ppaworker: campaign over, rejoining (scenarios cached)\n")
	}
}

// buildWrap assembles the per-unit evaluation middleware: chaos injection
// under the resilience layer with a shared park-mode breaker — the same
// stack the tables command arms for single-process campaigns.
func buildWrap(outageSpec string, breakerN int, maxOutage time.Duration, chaosSeed int64) (func(ppatuner.Evaluator) ppatuner.Evaluator, error) {
	sched, err := ppatuner.ParseOutageSchedule(outageSpec)
	if err != nil {
		return nil, err
	}
	var inj *ppatuner.ChaosInjector
	if sched.Enabled() {
		inj, err = ppatuner.NewChaos(ppatuner.ChaosOptions{Seed: chaosSeed, Outage: sched})
		if err != nil {
			return nil, err
		}
	}
	var brk *ppatuner.CircuitBreaker
	if breakerN > 0 {
		brk = ppatuner.NewCircuitBreaker(ppatuner.CircuitBreakerOptions{
			Threshold: breakerN,
			MaxOutage: maxOutage,
			Park:      true,
		})
	}
	if inj == nil && brk == nil {
		return nil, nil
	}
	return func(ev ppatuner.Evaluator) ppatuner.Evaluator {
		if inj != nil {
			ev = inj.Wrap(ev)
		}
		re, err := ppatuner.WrapEvaluator(nil, ev, ppatuner.ResilientOptions{
			Policy:  ppatuner.PolicySkip,
			Seed:    chaosSeed,
			Breaker: brk,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppaworker: %v\n", err)
			os.Exit(1)
		}
		return re.Evaluate
	}, nil
}
