// Command ppatune runs one tuner (PPATuner or a baseline) on one benchmark
// scenario and objective space, printing the hyper-volume error, ADRS and
// tool-run count — one cell of the paper's Table 2 / Table 3.
//
// Usage:
//
//	ppatune [-scenario 1|2] [-space area-delay|power-delay|area-power-delay]
//	        [-method PPATuner|TCAD'19|MLCAD'19|DAC'19|ASPDAC'20] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ppatuner"
	"ppatuner/internal/eval"
)

func main() {
	scenario := flag.Int("scenario", 2, "scenario: 1 (Source1->Target1) or 2 (Source2->Target2)")
	spaceName := flag.String("space", "power-delay", "objective space: area-delay | power-delay | area-power-delay")
	method := flag.String("method", "PPATuner", "tuner: PPATuner | TCAD'19 | MLCAD'19 | DAC'19 | ASPDAC'20")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var s *ppatuner.Scenario
	var err error
	switch *scenario {
	case 1:
		s, err = ppatuner.ScenarioOne()
	case 2:
		s, err = ppatuner.ScenarioTwo()
	default:
		fmt.Fprintln(os.Stderr, "ppatune: -scenario must be 1 or 2")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppatune: %v\n", err)
		os.Exit(1)
	}

	var space ppatuner.ObjSpace
	found := false
	for _, sp := range ppatuner.ObjSpaces() {
		if strings.EqualFold(strings.ReplaceAll(sp.Name, "-", ""), strings.ReplaceAll(*spaceName, "-", "")) {
			space = sp
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "ppatune: unknown objective space %q\n", *spaceName)
		os.Exit(2)
	}

	m := eval.Method(*method)
	fmt.Printf("%s | %s | %s (seed %d)\n", s.Name, space.Name, m, *seed)
	out, err := eval.RunMethod(m, s, space, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppatune: %v\n", err)
		os.Exit(1)
	}
	hv, adrs := eval.Score(s, space, out)
	fmt.Printf("hyper-volume error: %.4f\n", hv)
	fmt.Printf("ADRS:               %.4f\n", adrs)
	fmt.Printf("tool runs:          %d\n", out.Runs)
	fmt.Printf("predicted Pareto-optimal configurations: %d\n", len(out.ParetoIdx))
	for _, i := range out.ParetoIdx {
		p := s.Target.Points[i]
		fmt.Printf("  power=%.3f mW delay=%.4f ns area=%.1f um2  %s\n",
			p.QoR.PowerMW, p.QoR.DelayNS, p.QoR.AreaUm2, p.Config)
	}
}
