// Command ppatune runs one tuner (PPATuner or a baseline) on one benchmark
// scenario and objective space, printing the hyper-volume error, ADRS and
// tool-run count — one cell of the paper's Table 2 / Table 3.
//
// Usage:
//
//	ppatune [-scenario 1|2] [-space area-delay|power-delay|area-power-delay]
//	        [-method PPATuner|TCAD'19|MLCAD'19|DAC'19|ASPDAC'20] [-seed N]
//	        [-timeout D] [-retries N] [-policy retry|skip|abort]
//	        [-checkpoint FILE] [-chaos RATE] [-outage PERIOD/DOWN]
//	        [-breaker N] [-max-outage D] [-workers N] [-log]
//
// The fault-tolerance flags harden the evaluation path: -timeout bounds each
// tool evaluation, -retries bounds re-attempts with exponential backoff,
// -policy picks what an exhausted candidate does to the run, -checkpoint
// persists every observation to FILE so a killed run resumes without
// re-running the tool, and -chaos injects transient faults at the given rate
// (plus occasional hangs/crashes/corrupt QoR at a tenth of it) to rehearse
// all of the above. -outage adds time-correlated downtime windows (a
// DOWN-long outage inside every PERIOD stripe, e.g. 60s/10s) on top of the
// i.i.d. -chaos faults; -breaker arms a circuit breaker that trips after N
// consecutive transient failures (outage-marked failures trip it at once)
// and pauses evaluations — for at most -max-outage — instead of burning
// retry budgets, so an outage stretches wall-clock time but never changes
// results.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"ppatuner"
	"ppatuner/internal/eval"
)

func main() {
	scenario := flag.Int("scenario", 2, "scenario: 1 (Source1->Target1) or 2 (Source2->Target2)")
	spaceName := flag.String("space", "power-delay", "objective space: area-delay | power-delay | area-power-delay")
	method := flag.String("method", "PPATuner", "tuner: PPATuner | TCAD'19 | MLCAD'19 | DAC'19 | ASPDAC'20")
	seed := flag.Int64("seed", 1, "random seed")
	timeout := flag.Duration("timeout", 0, "per-evaluation deadline (0 disables)")
	retries := flag.Int("retries", 2, "retry budget per evaluation")
	policyName := flag.String("policy", "skip", "failure policy after retries: retry | skip | abort")
	ckptPath := flag.String("checkpoint", "", "JSON checkpoint file: observations are persisted there and resumed from it")
	chaosRate := flag.Float64("chaos", 0, "injected transient-fault rate in [0,1) (hangs/panics/corrupt QoR injected at rate/10 each)")
	outageSpec := flag.String("outage", "", "inject correlated downtime windows: PERIOD/DOWN (e.g. 60s/10s), empty or \"off\" disables")
	breakerN := flag.Int("breaker", 0, "circuit breaker: trip after N consecutive transient failures and pause instead of retrying (0 disables; outage-marked failures trip immediately)")
	maxOutage := flag.Duration("max-outage", 5*time.Minute, "abort when one outage episode keeps the breaker open longer than this")
	workers := flag.Int("workers", 0, "tuner concurrency: surrogate fits, pool sweeps and batched tool calls (0 = engine default; results are identical for any value)")
	gpFlag := flag.String("gp", "exact", "PPATuner surrogate: exact | sparse | sparse:<m> (inducing-point approximation, O(n·m²) per refit)")
	logJSON := flag.Bool("log", false, "stream evaluation-failure events as structured JSON logs on stderr")
	flag.Parse()

	// Validate every flag before the scenario build: generating the offline
	// datasets takes ~30s (scenario 2) to minutes (scenario 1), and a typo
	// should not cost that.
	if *scenario != 1 && *scenario != 2 {
		fmt.Fprintln(os.Stderr, "ppatune: -scenario must be 1 or 2")
		os.Exit(2)
	}
	var space ppatuner.ObjSpace
	found := false
	for _, sp := range ppatuner.ObjSpaces() {
		if strings.EqualFold(strings.ReplaceAll(sp.Name, "-", ""), strings.ReplaceAll(*spaceName, "-", "")) {
			space = sp
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "ppatune: unknown objective space %q\n", *spaceName)
		os.Exit(2)
	}
	policy, err := ppatuner.ParseFailurePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppatune: %v\n", err)
		os.Exit(2)
	}
	gpSpec, err := ppatuner.ParseGPSpec(*gpFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppatune: %v\n", err)
		os.Exit(2)
	}
	sched, err := ppatuner.ParseOutageSchedule(*outageSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppatune: %v\n", err)
		os.Exit(2)
	}
	if sched.Enabled() && *breakerN <= 0 {
		fmt.Fprintln(os.Stderr, "ppatune: note: -outage without -breaker burns retry budgets during downtime; pass -breaker to pause instead")
	}
	var inj *ppatuner.ChaosInjector
	if *chaosRate > 0 || sched.Enabled() {
		rates := ppatuner.ChaosRates{}
		if *chaosRate > 0 {
			rates = ppatuner.ChaosRates{
				Transient: *chaosRate,
				Hang:      *chaosRate / 10,
				Panic:     *chaosRate / 10,
				Corrupt:   *chaosRate / 10,
			}
		}
		inj, err = ppatuner.NewChaos(ppatuner.ChaosOptions{
			Seed:    *seed,
			Rates:   rates,
			Outage:  sched,
			HangFor: 2 * *timeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppatune: %v\n", err)
			os.Exit(2)
		}
	}

	var ckpt *ppatuner.EvalCheckpoint
	if *ckptPath != "" {
		ckpt, err = ppatuner.LoadCheckpoint(*ckptPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppatune: %v\n", err)
			os.Exit(1)
		}
		if n := ckpt.Len(); n > 0 {
			fmt.Printf("checkpoint: resuming with %d cached observations from %s\n", n, *ckptPath)
		}
	}

	var s *ppatuner.Scenario
	switch *scenario {
	case 1:
		s, err = ppatuner.ScenarioOne()
	case 2:
		s, err = ppatuner.ScenarioTwo()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppatune: %v\n", err)
		os.Exit(1)
	}

	// Fault-tolerance middleware around the pool evaluator, innermost first:
	// chaos injection (optional rehearsal) -> checkpoint write-through ->
	// resilient retry/deadline/validation layer.
	flog := &ppatuner.FailureLog{}
	if *logJSON {
		flog.Stream(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	}
	var brk *ppatuner.CircuitBreaker
	if *breakerN > 0 {
		brk = ppatuner.NewCircuitBreaker(ppatuner.CircuitBreakerOptions{
			Threshold: *breakerN,
			MaxOutage: *maxOutage,
			Log:       flog,
		})
	}
	wrap := func(ev ppatuner.Evaluator) ppatuner.Evaluator {
		if inj != nil {
			ev = inj.Wrap(ev)
		}
		if ckpt != nil {
			ev = ckpt.Wrap(ev)
		}
		re, err := ppatuner.WrapEvaluator(nil, ev, ppatuner.ResilientOptions{
			Timeout:    *timeout,
			MaxRetries: *retries,
			Policy:     policy,
			Seed:       *seed,
			Breaker:    brk,
			Log:        flog,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppatune: %v\n", err)
			os.Exit(2)
		}
		return re.Evaluate
	}

	m := eval.Method(*method)
	fmt.Printf("%s | %s | %s (seed %d)\n", s.Name, space.Name, m, *seed)
	start := time.Now()
	out, err := eval.RunMethodOpts(m, s, space, *seed, eval.RunOpts{Wrap: wrap, Workers: *workers, GP: gpSpec})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppatune: %v\n", err)
		os.Exit(1)
	}
	hv, adrs := eval.Score(s, space, out)
	fmt.Printf("hyper-volume error: %.4f\n", hv)
	fmt.Printf("ADRS:               %.4f\n", adrs)
	fmt.Printf("tool runs:          %d\n", out.Runs)
	fmt.Printf("wall time:          %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("failures:           %s\n", flog.Summary())
	if brk != nil {
		fmt.Printf("breaker:            %d trip(s), final state %s\n", brk.Trips(), brk.State())
	}
	if inj != nil && inj.Counts().Outage > 0 {
		fmt.Printf("outages injected:   %d (schedule %s)\n", inj.Counts().Outage, sched)
	}
	if ckpt != nil {
		hits, misses := ckpt.Stats()
		fmt.Printf("checkpoint:         %d replayed, %d fresh (now %d cached in %s)\n", hits, misses, ckpt.Len(), *ckptPath)
	}
	fmt.Printf("predicted Pareto-optimal configurations: %d\n", len(out.ParetoIdx))
	for _, i := range out.ParetoIdx {
		p := s.Target.Points[i]
		fmt.Printf("  power=%.3f mW delay=%.4f ns area=%.1f um2  %s\n",
			p.QoR.PowerMW, p.QoR.DelayNS, p.QoR.AreaUm2, p.Config)
	}
}
