// Command ppacoord regenerates the paper's tables by distributing campaign
// units across worker processes. It enumerates every (space × method × seed)
// unit, leases each to a worker under a heartbeat-renewed TTL, merges the
// streamed observations and results into one campaign checkpoint, and
// assembles the same tables a single-process run produces — byte-identical
// at any worker count, under any kill schedule.
//
// Usage:
//
//	ppacoord [-table 2|3|both] [-seeds N|s1,s2,...]
//	         [-workers N [-worker-bin PATH] [-worker-flags "..."] [-kill W@T,...]]
//	         [-listen ADDR -workers-remote N]
//	         [-lease D] [-requeue D]
//	         [-checkpoint FILE [-resume]] [-json FILE]
//	         [-standby] [-beacon FILE] [-beacon-every D] [-takeover-after D]
//
// -workers spawns N local ppaworker processes speaking the protocol on
// their stdio pipes; -listen additionally (or instead) accepts remote
// workers over TCP — start those with ppaworker -connect ADDR. -kill
// SIGKILLs spawned workers mid-campaign (worker W at T after campaign
// start) to rehearse lease reclaim: the killed worker's unit is parked,
// requeued and re-granted under a higher lease epoch, and any result the
// dead epoch might still deliver is rejected as a zombie. Two special
// targets rehearse coordinator death instead: "coord@T" SIGKILLs this
// process itself at T, and "split@T" mutes its beacon at T while it keeps
// running (the split-brain drill — checkpoint fencing deposes it once a
// standby adopts).
//
// High availability: with -checkpoint, every run adopts the checkpoint
// under a fresh coordinator generation (the fencing token stamped into
// all of its writes), and announces liveness into the -beacon file. A
// second ppacoord started with -standby on the same checkpoint and beacon
// waits until the beacon has been silent for -takeover-after, then adopts
// the checkpoint — fencing the old primary's in-flight writes — re-arms
// the persisted leases, and finishes the campaign. Point workers at both
// addresses (ppaworker -connect primary,standby) and they reconnect to
// whichever coordinator is alive; results are byte-identical to an
// undisturbed single-process run.
//
// With -table both and only remote workers, workers exit after the first
// table's shutdown broadcast unless they run with -rejoin; prefer
// -workers for local campaigns.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ppatuner"
	"ppatuner/internal/clock"
	"ppatuner/internal/eval"
	"ppatuner/internal/pdtool/chaos"
	"ppatuner/internal/robust"
	"ppatuner/internal/shard"
	"ppatuner/internal/shard/transport"
)

// tablesDoc mirrors the tables command's TABLES.json document, so the
// distributed and single-process pipelines feed the same consumers.
type tablesDoc struct {
	GoVersion string             `json:"go_version"`
	Timestamp string             `json:"timestamp"`
	Seeds     []int64            `json:"seeds"`
	Workers   int                `json:"workers"`
	Tables    []eval.TableReport `json:"tables"`
}

func main() {
	table := flag.String("table", "both", "which table to regenerate: 2 | 3 | both")
	seedSpec := flag.String("seeds", "3", "seed count N (averages seeds 1..N) or explicit comma-separated seed list")
	workers := flag.Int("workers", 0, "local ppaworker processes to spawn (stdio transport)")
	workerBin := flag.String("worker-bin", "", "ppaworker binary for -workers (default: next to this binary, then $PATH)")
	workerFlags := flag.String("worker-flags", "", "extra flags passed to every spawned worker, e.g. \"-outage 60s/10s -breaker 2\"")
	killSpec := flag.String("kill", "", "SIGKILL schedule for spawned workers: W@T[,W@T...] (e.g. 1@30s), empty or \"off\" disables")
	listen := flag.String("listen", "", "TCP address to accept remote workers on (they run ppaworker -connect ADDR)")
	workersRemote := flag.Int("workers-remote", 0, "remote workers expected on -listen (recorded in TABLES.json; grants start as soon as any worker connects)")
	lease := flag.Duration("lease", 30*time.Second, "lease TTL: a worker silent for this long loses its unit to the requeue path")
	requeue := flag.Duration("requeue", 0, "hold a breaker-parked unit out of the grant queue for this long (0 derives lease/4)")
	ckptPath := flag.String("checkpoint", "", "campaign checkpoint file: completed cells, partial observations and the lease ledger persist there")
	resume := flag.Bool("resume", false, "continue from an existing -checkpoint file (without it, a pre-existing file is an error)")
	jsonPath := flag.String("json", "", "write the machine-readable TABLES.json document to this path")
	standby := flag.Bool("standby", false, "wait for the primary's beacon to fall silent, then adopt the checkpoint and finish the campaign (implies -resume)")
	beaconPath := flag.String("beacon", "", "liveness beacon file shared between primary and standby (default: <checkpoint>.beacon)")
	beaconEvery := flag.Duration("beacon-every", 2*time.Second, "how often the primary announces into the beacon")
	takeoverAfter := flag.Duration("takeover-after", 15*time.Second, "beacon silence a standby requires before promoting")
	flag.Parse()

	fail := func(code int, err error) {
		fmt.Fprintf(os.Stderr, "ppacoord: %v\n", err)
		os.Exit(code)
	}

	seeds, err := eval.ParseSeeds(*seedSpec)
	if err != nil {
		fail(2, err)
	}
	faults, err := chaos.ParseKillSchedule(*killSpec)
	if err != nil {
		fail(2, err)
	}
	if *workers <= 0 && *listen == "" {
		fail(2, fmt.Errorf("no workers: pass -workers N to spawn local ones, -listen ADDR to accept remote ones, or both"))
	}
	if len(faults.Kills) > 0 && *workers <= 0 {
		fail(2, fmt.Errorf("-kill schedules SIGKILLs for spawned workers; it needs -workers"))
	}
	if *ckptPath == "" {
		if *standby {
			fail(2, fmt.Errorf("-standby adopts a shared -checkpoint; pass one"))
		}
		if faults.SplitBrain {
			fail(2, fmt.Errorf("-kill split@T mutes the beacon of a checkpointed run; pass -checkpoint"))
		}
	}
	if *beaconPath == "" && *ckptPath != "" {
		*beaconPath = *ckptPath + ".beacon"
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var beacon *shard.Beacon
	if *beaconPath != "" {
		beacon = shard.NewBeacon(*beaconPath)
	}
	if *standby {
		fmt.Fprintf(os.Stderr, "ppacoord: standby: watching beacon %s (promoting after %v of silence)\n", *beaconPath, *takeoverAfter)
		if err := beacon.Watch(ctx, clock.Real(), 0, *takeoverAfter); err != nil {
			fail(1, err)
		}
		fmt.Fprintf(os.Stderr, "ppacoord: standby: beacon silent for %v, promoting\n", *takeoverAfter)
		*resume = true
	}

	var ck *ppatuner.CampaignCheckpoint
	resumedCells := 0
	if *ckptPath != "" {
		if !*resume {
			if fi, err := os.Stat(*ckptPath); err == nil && fi.Size() > 0 {
				fail(2, fmt.Errorf("checkpoint %s already exists; pass -resume to continue it or remove the file", *ckptPath))
			}
		}
		ck, err = ppatuner.LoadCampaignCheckpoint(*ckptPath)
		if err != nil {
			fail(1, err)
		}
		resumedCells = ck.Cells()
		gen, err := ck.Adopt()
		if err != nil {
			fail(1, err)
		}
		fmt.Fprintf(os.Stderr, "ppacoord: adopted checkpoint %s at generation %d\n", *ckptPath, gen)
	}

	// Coordinator-level chaos arms from adoption: coord@T self-SIGKILLs
	// (the fail-over drill a standby must survive), split@T mutes the
	// beacon while this process keeps serving (the split-brain drill
	// checkpoint fencing must contain).
	if faults.CoordKill {
		time.AfterFunc(faults.CoordKillAt, func() {
			fmt.Fprintf(os.Stderr, "ppacoord: chaos: SIGKILL self (pid %d)\n", os.Getpid())
			if proc, err := os.FindProcess(os.Getpid()); err == nil {
				_ = proc.Kill()
			}
		})
	}
	if faults.SplitBrain {
		time.AfterFunc(faults.SplitBrainAt, func() {
			fmt.Fprintf(os.Stderr, "ppacoord: chaos: muting beacon %s (split-brain)\n", *beaconPath)
			beacon.Mute()
		})
	}

	// One conns stream for the whole process: remote workers are forwarded
	// in as they dial, local ones are pushed at each campaign start.
	conns := make(chan shard.Conn, 64)
	if *listen != "" {
		remote, closeL, addr, err := transport.Listen(ctx, *listen)
		if err != nil {
			fail(1, err)
		}
		defer closeL()
		fmt.Fprintf(os.Stderr, "ppacoord: accepting workers on %s (expecting %d; start them with: ppaworker -connect %s)\n", addr, *workersRemote, addr)
		go func() {
			for c := range remote {
				conns <- c
			}
		}()
	}

	flog := &robust.FailureLog{}
	var reports []eval.TableReport
	runTable := func(name string, mk func() (*ppatuner.Scenario, error)) {
		t0 := time.Now()
		s, err := mk()
		if err != nil {
			fail(1, err)
		}
		fmt.Fprintf(os.Stderr, "— %s (benchmark ready in %v) —\n", name, time.Since(t0).Round(time.Second))
		t0 = time.Now()
		co, err := shard.New(shard.Options{
			Campaign:     &ppatuner.Campaign{Scenario: s, Seeds: seeds, Checkpoint: ck},
			LeaseTTL:     *lease,
			RequeueDelay: *requeue,
			Log:          flog,
			AdoptLeases:  *standby,
			Beacon:       beacon,
			BeaconEvery:  *beaconEvery,
		})
		if err != nil {
			fail(1, err)
		}
		cmds := spawnWorkers(conns, *workers, *workerBin, *workerFlags, faults)
		tbl, err := co.Run(ctx, conns)
		for _, cmd := range cmds {
			_ = cmd.Wait() // killed workers exit non-zero by design
		}
		if errors.Is(err, shard.ErrDeposed) {
			// A newer generation adopted the checkpoint out from under us:
			// every result is safe with the new primary, so stand down
			// loudly but without masquerading as a campaign failure.
			fail(3, fmt.Errorf("deposed: %v", err))
		}
		if err != nil {
			fail(1, err)
		}
		fmt.Print(tbl.Format())
		st := co.Stats()
		fmt.Fprintf(os.Stderr, "(computed in %v over %d seed(s); leases: %d granted, %d renewed, %d expired, %d workers lost, %d zombie results rejected, %d duplicates discarded)\n\n",
			time.Since(t0).Round(time.Second), len(seeds), st.Granted, st.Renewed, st.Expired, st.WorkersLost, st.ZombieResults, st.Duplicates)
		reports = append(reports, tbl.Report(name, seeds))
	}

	if *table == "2" || *table == "both" {
		runTable("Table 2", ppatuner.ScenarioOne)
	}
	if *table == "3" || *table == "both" {
		runTable("Table 3", ppatuner.ScenarioTwo)
	}

	if ck != nil {
		// Retire clears the generation stamp so the finished checkpoint is
		// byte-identical to one a never-adopted single-process run wrote.
		if err := ck.Retire(); err != nil {
			if errors.Is(err, robust.ErrFenced) {
				fail(3, fmt.Errorf("deposed: %v", err))
			}
			fail(1, err)
		}
		fmt.Fprintf(os.Stderr, "checkpoint: resumed %d completed cells (now %d cells in %s)\n", resumedCells, ck.Cells(), *ckptPath)
	}
	fmt.Fprintf(os.Stderr, "failures: %s\n", flog.Summary())

	if *jsonPath != "" {
		doc := tablesDoc{
			GoVersion: runtime.Version(),
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			Seeds:     seeds,
			Workers:   *workers + *workersRemote,
			Tables:    reports,
		}
		data, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fail(1, err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fail(1, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

// spawnWorkers starts n local ppaworker processes on stdio pipes, pushes
// their conns to the coordinator, and arms the SIGKILL schedule (At is
// measured from this campaign's worker spawn).
func spawnWorkers(conns chan<- shard.Conn, n int, bin, extraFlags string, faults chaos.ProcFaults) []*exec.Cmd {
	if n <= 0 {
		return nil
	}
	if bin == "" {
		bin = "ppaworker"
		if self, err := os.Executable(); err == nil {
			if sibling := filepath.Join(filepath.Dir(self), "ppaworker"); isExecutable(sibling) {
				bin = sibling
			}
		}
	}
	extra := strings.Fields(extraFlags)
	var cmds []*exec.Cmd
	for i := 0; i < n; i++ {
		args := append([]string{"-id", fmt.Sprintf("w%d", i)}, extra...)
		conn, cmd, err := transport.Spawn(bin, args...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppacoord: %v\n", err)
			os.Exit(1)
		}
		conns <- conn
		cmds = append(cmds, cmd)
		if at, ok := faults.KillAt(i); ok {
			proc := cmd.Process
			time.AfterFunc(at, func() {
				fmt.Fprintf(os.Stderr, "ppacoord: chaos: SIGKILL worker w%d (pid %d)\n", i, proc.Pid)
				_ = proc.Kill()
			})
		}
	}
	return cmds
}

func isExecutable(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && !fi.IsDir() && fi.Mode()&0o111 != 0
}
