// Command bench runs the GP hot-path micro-benchmarks (internal/gpbench) and
// writes the results to a JSON file, giving every PR a machine-readable perf
// trajectory for the surrogate loop:
//
//	go run ./cmd/bench -o BENCH_gp.json
//
// The same benchmarks are exposed to `go test -bench` as BenchmarkFitRefit,
// BenchmarkPredictPool and BenchmarkAddTarget in the root package; this
// command exists so CI can archive the numbers without scraping test output.
//
// With -against BASELINE.json the command additionally acts as a regression
// gate: after measuring, it compares the fresh FitRefit ns/op to the
// baseline's and exits 1 when the fresh number exceeds the baseline by more
// than -maxregress (a fraction; 0.25 allows +25%). Only FitRefit gates —
// the other benchmarks are too short-running to be stable across shared CI
// hosts — but every comparison is printed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ppatuner/internal/gpbench"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the BENCH_gp.json document.
type Report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Timestamp string   `json:"timestamp"`
	Results   []Result `json:"results"`
}

func run(name string, fn func(*testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// gate compares the fresh FitRefit measurement against a baseline report
// and returns an error when it regressed beyond the allowed fraction.
func gate(fresh Report, baselinePath string, maxRegress float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseNs := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		baseNs[r.Name] = r.NsPerOp
	}
	var gateErr error
	for _, r := range fresh.Results {
		old, ok := baseNs[r.Name]
		if !ok || old <= 0 {
			continue
		}
		ratio := r.NsPerOp / old
		verdict := "info"
		if r.Name == "FitRefit" {
			verdict = "ok"
			if ratio > 1+maxRegress {
				verdict = "REGRESSED"
				gateErr = fmt.Errorf("FitRefit regressed: %.0f ns/op vs baseline %.0f ns/op (%.2fx > allowed %.2fx)",
					r.NsPerOp, old, ratio, 1+maxRegress)
			}
		}
		fmt.Printf("gate %-12s %10.0f ns/op vs %10.0f baseline (%.2fx) [%s]\n",
			r.Name, r.NsPerOp, old, ratio, verdict)
	}
	return gateErr
}

func main() {
	out := flag.String("o", "BENCH_gp.json", "output file for the JSON benchmark report")
	benchtime := flag.String("benchtime", "", "per-benchmark budget as a duration or iteration count (e.g. 2s, 1x); empty keeps the testing default")
	against := flag.String("against", "", "baseline BENCH_gp.json to gate against; exit 1 if FitRefit regresses beyond -maxregress")
	maxRegress := flag.Float64("maxregress", 0.25, "allowed FitRefit ns/op regression vs -against, as a fraction (0.25 = +25%)")
	testing.Init()
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "bench: -benchtime %s: %v\n", *benchtime, err)
			os.Exit(2)
		}
	}

	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"FitRefit", gpbench.FitRefit},
		{"PredictPool", gpbench.PredictPool},
		{"AddTarget", gpbench.AddTarget},
	} {
		res := run(bench.name, bench.fn)
		fmt.Printf("%-12s %10.0f ns/op %8d B/op %6d allocs/op (%d iters)\n",
			bench.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
		rep.Results = append(rep.Results, res)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *against != "" {
		if err := gate(rep, *against, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}
}
