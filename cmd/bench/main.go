// Command bench runs the GP hot-path micro-benchmarks (internal/gpbench) and
// writes the results to a JSON file, giving every PR a machine-readable perf
// trajectory for the surrogate loop:
//
//	go run ./cmd/bench -o BENCH_gp.json
//
// The same benchmarks are exposed to `go test -bench` as BenchmarkFitRefit,
// BenchmarkPredictPool and BenchmarkAddTarget in the root package; this
// command exists so CI can archive the numbers without scraping test output.
//
// With -against BASELINE.json the command additionally acts as a regression
// gate: after measuring, it compares fresh ns/op to the baseline's and exits
// 1 on a regression. FitRefit gates at -maxregress (a fraction; 0.25 allows
// +25%); PredictPool and AddTarget are much shorter-running and therefore
// noisier on shared CI hosts, so they gate at the wider -maxregress-micro.
// Benchmarks present in only one report are informational.
//
// -scale additionally runs the exact-vs-sparse scale suite (FitScale etc. at
// n ∈ {200, 1000, 5000}); pair it with -benchtime 1x to keep the run short.
// Scale results are recorded but never gated — they exist to document the
// complexity separation, not to police it per commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ppatuner/internal/gp"
	"ppatuner/internal/gpbench"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the BENCH_gp.json document.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS and Workers pin down the concurrency the numbers were taken
	// under: ns/op from a host with different effective parallelism is not
	// comparable, and the gate should know that.
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Timestamp  string   `json:"timestamp"`
	Results    []Result `json:"results"`
}

func run(name string, fn func(*testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// gate compares the fresh measurements against a baseline report and returns
// an error when a gated benchmark regressed beyond its allowed fraction.
// FitRefit is long-running and gates tightly (maxRegress); PredictPool and
// AddTarget are microsecond-scale and gate at the wider maxMicro. Scale-suite
// entries and benchmarks missing from either report are informational.
func gate(fresh Report, baselinePath string, maxRegress, maxMicro float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if base.GOMAXPROCS != 0 && base.GOMAXPROCS != fresh.GOMAXPROCS {
		fmt.Printf("gate: note: GOMAXPROCS differs (baseline %d, fresh %d); ratios may reflect the host, not the code\n",
			base.GOMAXPROCS, fresh.GOMAXPROCS)
	}
	allowed := map[string]float64{
		"FitRefit":    maxRegress,
		"PredictPool": maxMicro,
		"AddTarget":   maxMicro,
	}
	baseNs := make(map[string]float64, len(base.Results))
	for _, r := range base.Results {
		baseNs[r.Name] = r.NsPerOp
	}
	var gateErr error
	for _, r := range fresh.Results {
		old, ok := baseNs[r.Name]
		if !ok || old <= 0 {
			continue
		}
		ratio := r.NsPerOp / old
		verdict := "info"
		if max, gated := allowed[r.Name]; gated {
			verdict = "ok"
			if ratio > 1+max {
				verdict = "REGRESSED"
				err := fmt.Errorf("%s regressed: %.0f ns/op vs baseline %.0f ns/op (%.2fx > allowed %.2fx)",
					r.Name, r.NsPerOp, old, ratio, 1+max)
				if gateErr == nil {
					gateErr = err
				}
				fmt.Println(err)
			}
		}
		fmt.Printf("gate %-28s %12.0f ns/op vs %12.0f baseline (%.2fx) [%s]\n",
			r.Name, r.NsPerOp, old, ratio, verdict)
	}
	return gateErr
}

func main() {
	out := flag.String("o", "BENCH_gp.json", "output file for the JSON benchmark report")
	benchtime := flag.String("benchtime", "", "per-benchmark budget as a duration or iteration count (e.g. 2s, 1x); empty keeps the testing default")
	against := flag.String("against", "", "baseline BENCH_gp.json to gate against; exit 1 if a gated benchmark regresses beyond its margin")
	maxRegress := flag.Float64("maxregress", 0.25, "allowed FitRefit ns/op regression vs -against, as a fraction (0.25 = +25%)")
	maxMicro := flag.Float64("maxregress-micro", 0.75, "allowed PredictPool/AddTarget ns/op regression vs -against; wider than -maxregress because microsecond-scale benchmarks are noisier on shared hosts")
	scale := flag.Bool("scale", false, "also run the exact-vs-sparse scale suite (n up to 5000; pair with -benchtime 1x)")
	workers := flag.Int("workers", 1, "SetWorkers value for every benchmarked surrogate (recorded in the report)")
	testing.Init()
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "bench: -benchtime %s: %v\n", *benchtime, err)
			os.Exit(2)
		}
	}
	gpbench.Workers = *workers

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"FitRefit", gpbench.FitRefit},
		{"PredictPool", gpbench.PredictPool},
		{"AddTarget", gpbench.AddTarget},
	}
	if *scale {
		for _, sb := range []struct {
			name string
			fn   func(*testing.B, int, gp.Spec)
		}{
			{"FitScale", gpbench.FitScale},
			{"PredictPoolScale", gpbench.PredictPoolScale},
			{"AddTargetScale", gpbench.AddTargetScale},
		} {
			for _, n := range gpbench.ScaleSizes {
				for _, spec := range []gp.Spec{{}, gpbench.SparseScaleSpec} {
					if !spec.Sparse && n > gpbench.ExactScaleMax {
						continue
					}
					sb, n, spec := sb, n, spec
					benches = append(benches, struct {
						name string
						fn   func(*testing.B)
					}{
						fmt.Sprintf("%s/n%d/%s", sb.name, n, spec),
						func(b *testing.B) { sb.fn(b, n, spec) },
					})
				}
			}
		}
	}
	for _, bench := range benches {
		res := run(bench.name, bench.fn)
		fmt.Printf("%-28s %12.0f ns/op %10d B/op %6d allocs/op (%d iters)\n",
			bench.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
		rep.Results = append(rep.Results, res)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *against != "" {
		if err := gate(rep, *against, *maxRegress, *maxMicro); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}
}
