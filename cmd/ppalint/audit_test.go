package main

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuppressionInventory pins the number of //ppalint:allow directives in
// the tree. Adding a suppression is a reviewed decision: whoever adds one
// must update this count (and the catalog in DESIGN.md if the policy
// changes), so waivers can't accumulate silently.
func TestSuppressionInventory(t *testing.T) {
	entries, err := collectSuppressions([]string{"./..."}, true)
	if err != nil {
		t.Fatalf("collectSuppressions: %v", err)
	}

	// internal/shard/transport: lockio waiver on streamConn.Send;
	// internal/shard/reconn.go: lockio waiver on the single-flight
	// reconnect mutex held across dial+backoff.
	const pinned = 2
	if len(entries) != pinned {
		var got []string
		for _, e := range entries {
			got = append(got, e.pos.String()+" ("+e.analyzer+")")
		}
		t.Fatalf("suppression count = %d, want %d — update the pin when adding a reviewed waiver:\n%s",
			len(entries), pinned, strings.Join(got, "\n"))
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, e := range entries {
		if problem := auditProblem(e, known); problem != "" {
			t.Errorf("%s: invalid suppression: %s", e.pos, problem)
		}
	}

	wantFiles := map[string]bool{
		"internal/shard/transport/transport.go": false,
		"internal/shard/reconn.go":              false,
	}
	for _, e := range entries {
		if e.analyzer != "lockio" {
			t.Errorf("pinned suppression analyzer = %q, want lockio", e.analyzer)
		}
		for want := range wantFiles {
			if strings.HasSuffix(filepath.ToSlash(e.pos.Filename), want) {
				wantFiles[want] = true
			}
		}
	}
	for want, seen := range wantFiles {
		if !seen {
			t.Errorf("no pinned suppression found in .../%s", want)
		}
	}
}

// TestAuditProblem covers the failure classes -audit enforces.
func TestAuditProblem(t *testing.T) {
	known := map[string]bool{"lockio": true}
	pos := token.Position{Filename: "x.go", Line: 1}
	cases := []struct {
		name  string
		entry auditEntry
		want  string // substring of the problem, "" for valid
	}{
		{"valid", auditEntry{pos: pos, analyzer: "lockio", reason: "held across frame writes only", justified: true}, ""},
		{"no analyzer", auditEntry{pos: pos}, "missing analyzer"},
		{"unknown analyzer", auditEntry{pos: pos, analyzer: "speling", reason: "some words here too", justified: true}, "unknown analyzer"},
		{"no reason", auditEntry{pos: pos, analyzer: "lockio", reason: "ok", justified: false}, "missing reason"},
	}
	for _, c := range cases {
		got := auditProblem(c.entry, known)
		if c.want == "" && got != "" {
			t.Errorf("%s: auditProblem = %q, want valid", c.name, got)
		}
		if c.want != "" && !strings.Contains(got, c.want) {
			t.Errorf("%s: auditProblem = %q, want substring %q", c.name, got, c.want)
		}
	}
}
