// Command ppalint runs the repo's custom determinism and numerical-safety
// analyzers (internal/analysis/...). It supports two modes:
//
//	go run ./cmd/ppalint ./...          # standalone, loads packages from source
//	go vet -vettool=$(which ppalint) ./...  # driven by the go command
//
// The vettool mode implements the same command-line protocol as
// x/tools/go/analysis/unitchecker (-V=full, -flags, and a JSON .cfg file
// per compilation unit) without depending on x/tools: builds run in
// hermetic environments with no module proxy, so the driver is built on
// go/importer and go/types alone. In vettool mode type information comes
// from the compiler's export data handed over by the go command; in
// standalone mode packages are type-checked from source.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ppatuner/internal/analysis"
	"ppatuner/internal/analysis/goroutineleak"
	"ppatuner/internal/analysis/load"
	"ppatuner/internal/analysis/lockio"
	"ppatuner/internal/analysis/maporder"
	"ppatuner/internal/analysis/mustcheck"
	"ppatuner/internal/analysis/noalloc"
	"ppatuner/internal/analysis/nodeterminism"
	"ppatuner/internal/analysis/parclosure"
	"ppatuner/internal/analysis/wirecompat"
)

var analyzers = []*analysis.Analyzer{
	nodeterminism.Analyzer,
	maporder.Analyzer,
	mustcheck.Analyzer,
	parclosure.Analyzer,
	goroutineleak.Analyzer,
	lockio.Analyzer,
	wirecompat.Analyzer,
	noalloc.Analyzer,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppalint: ")

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	jsonOut := flag.Bool("json", false, "standalone mode: write diagnostics (including suppressed ones) as a JSON array on stdout")
	_ = flag.Int("c", -1, "accepted for go vet compatibility (ignored)")
	noTests := flag.Bool("notests", false, "standalone mode: skip _test.go files and external test packages")
	audit := flag.Bool("audit", false, "list every //ppalint:allow suppression; fail if one lacks a reason or names an unknown analyzer")
	updateWirelock := flag.Bool("update-wirelock", false, "regenerate the wirecompat schema lock file at the module root and exit")
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}
	if *updateWirelock {
		os.Exit(runUpdateWirelock())
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// go vet unit mode. The go command may also pass -json here; unit
		// diagnostics stay in the plain vet format regardless, which the go
		// command accepts from a vettool.
		os.Exit(runUnit(args[0]))
	}
	if len(args) > 0 && args[0] == "help" {
		help()
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	if *audit {
		os.Exit(runAudit(args, !*noTests))
	}
	os.Exit(runStandalone(args, !*noTests, *jsonOut))
}

func help() {
	fmt.Println("ppalint enforces the determinism, concurrency, and wire-safety invariants of this repo.")
	fmt.Println("Usage: ppalint [./pattern...]   or   go vet -vettool=$(command -v ppalint) ./...")
	fmt.Println("\nFlags (standalone mode):")
	fmt.Println("  -json              emit diagnostics as a JSON array, suppressed ones included")
	fmt.Println("  -audit             list every //ppalint:allow suppression with analyzer and reason")
	fmt.Println("  -update-wirelock   regenerate <module root>/wire.lock from the wire-root packages")
	fmt.Println("  -notests           skip _test.go files and external test packages")
	for _, a := range analyzers {
		fmt.Printf("\n%s:\n%s\n", a.Name, a.Doc)
	}
	fmt.Println("\nSuppressions: //ppalint:allow <analyzer> <justification> on the flagged line")
	fmt.Println("or the line above. The justification is mandatory; unjustified directives")
	fmt.Println("are themselves reported, and -audit inventories every allow in the tree.")
}

// ---- go vet -vettool protocol --------------------------------------------

// versionFlag implements -V=full: the go command fingerprints the tool
// binary to key its vet cache, expecting the exact shape below.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// unitConfig mirrors the JSON compilation-unit description the go command
// writes next to each package it vets (x/tools unitchecker.Config).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := newInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		log.Fatal(err)
	}

	var diags []diag
	if !cfg.VetxOnly {
		diags = analyze(&load.Package{PkgPath: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info})
	}
	if code := writeVetx(cfg); code != 0 {
		return code
	}
	active := 0
	for _, d := range diags {
		if d.suppressed {
			continue
		}
		active++
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.pos, d.analyzer, d.message)
	}
	if active > 0 {
		return 1
	}
	return 0
}

// writeVetx persists the (empty) facts file the go command expects; ppalint
// analyzers are factless, but the file must exist for caching.
func writeVetx(cfg *unitConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

// runUpdateWirelock regenerates the wirecompat schema lock: every wire-root
// package is loaded from source, its reachable JSON surface extracted, and
// the deterministic lock text written to <module root>/wire.lock. CI diffs
// the committed file, so schema changes are always a reviewed diff.
func runUpdateWirelock() int {
	root, modulePath, goVersion, err := findModule()
	if err != nil {
		log.Fatal(err)
	}
	loader := &load.Loader{
		GoVersion: goVersion,
		Resolve: func(importPath string) (string, bool) {
			if importPath == modulePath {
				return root, true
			}
			if rest, ok := strings.CutPrefix(importPath, modulePath+"/"); ok {
				return filepath.Join(root, filepath.FromSlash(rest)), true
			}
			return "", false
		},
	}
	sections := map[string]wirecompat.Schema{}
	for pkgPath, rootNames := range wirecompat.DefaultRoots {
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			log.Fatalf("loading wire root %s: %v", pkgPath, err)
		}
		schema, err := wirecompat.Extract(pkg.Pkg, rootNames)
		if err != nil {
			log.Fatal(err)
		}
		sections[pkgPath] = schema
	}
	lockPath := filepath.Join(root, wirecompat.LockFileName)
	if err := os.WriteFile(lockPath, []byte(wirecompat.FormatLock(sections)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", lockPath)
	return 0
}

// ---- standalone mode ------------------------------------------------------

type diag struct {
	pos        token.Position
	analyzer   string
	message    string
	suppressed bool
}

func runStandalone(patterns []string, includeTests, jsonOut bool) int {
	root, modulePath, goVersion, err := findModule()
	if err != nil {
		log.Fatal(err)
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		log.Fatal(err)
	}
	loader := &load.Loader{
		GoVersion:    goVersion,
		IncludeTests: includeTests,
		Resolve: func(importPath string) (string, bool) {
			if importPath == modulePath {
				return root, true
			}
			if rest, ok := strings.CutPrefix(importPath, modulePath+"/"); ok {
				return filepath.Join(root, filepath.FromSlash(rest)), true
			}
			return "", false
		},
	}

	var all []diag
	failed := false
	for _, rel := range dirs {
		ip := modulePath
		if rel != "." {
			ip = modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(ip)
		if err != nil {
			if strings.Contains(err.Error(), "no buildable Go source files") ||
				strings.Contains(err.Error(), "no Go files") {
				continue
			}
			log.Print(err)
			failed = true
			continue
		}
		all = append(all, analyze(pkg)...)
		if includeTests {
			xt, err := loader.LoadXTest(ip)
			if err != nil {
				log.Print(err)
				failed = true
				continue
			}
			if xt != nil {
				all = append(all, analyze(xt)...)
			}
		}
	}

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.message < b.message
	})
	active := 0
	for _, d := range all {
		if !d.suppressed {
			active++
		}
	}
	if jsonOut {
		writeJSON(all)
	} else {
		cwd, _ := os.Getwd()
		for _, d := range all {
			if d.suppressed {
				continue
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", relToCwd(cwd, d.pos.Filename), d.pos.Line, d.pos.Column, d.analyzer, d.message)
		}
	}
	if failed {
		return 2
	}
	if active > 0 {
		return 1
	}
	return 0
}

// relToCwd shortens an absolute diagnostic path when it sits under the
// working directory; CI problem matchers and humans both prefer that form.
func relToCwd(cwd, name string) string {
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// writeJSON emits the structured diagnostic report consumed by the CI
// artifact step: one object per diagnostic, suppressed findings included
// with suppressed=true so waived debt stays visible in dashboards.
func writeJSON(all []diag) {
	type jsonDiag struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	cwd, _ := os.Getwd()
	out := make([]jsonDiag, 0, len(all))
	for _, d := range all {
		out = append(out, jsonDiag{
			File:       filepath.ToSlash(relToCwd(cwd, d.pos.Filename)),
			Line:       d.pos.Line,
			Col:        d.pos.Column,
			Analyzer:   d.analyzer,
			Message:    d.message,
			Suppressed: d.suppressed,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

// ---- suppression audit ----------------------------------------------------

// auditEntry is one //ppalint:allow directive found in shipped or test code
// (fixture trees under testdata are never loaded, so they don't count).
type auditEntry struct {
	pos       token.Position
	analyzer  string
	reason    string
	justified bool
}

// collectSuppressions loads every package matching the patterns and returns
// all allow directives in deterministic file/line order. Shared by -audit
// and the pin-count test, so both always see the same inventory.
func collectSuppressions(patterns []string, includeTests bool) ([]auditEntry, error) {
	root, modulePath, goVersion, err := findModule()
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	loader := &load.Loader{
		GoVersion:    goVersion,
		IncludeTests: includeTests,
		Resolve: func(importPath string) (string, bool) {
			if importPath == modulePath {
				return root, true
			}
			if rest, ok := strings.CutPrefix(importPath, modulePath+"/"); ok {
				return filepath.Join(root, filepath.FromSlash(rest)), true
			}
			return "", false
		},
	}
	var out []auditEntry
	record := func(pkg *load.Package) {
		for _, s := range analysis.Suppressions(pkg.Fset, pkg.Files) {
			out = append(out, auditEntry{
				pos:       pkg.Fset.Position(s.Pos),
				analyzer:  s.Analyzer,
				reason:    s.Reason,
				justified: s.Justified,
			})
		}
	}
	for _, rel := range dirs {
		ip := modulePath
		if rel != "." {
			ip = modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(ip)
		if err != nil {
			if strings.Contains(err.Error(), "no buildable Go source files") ||
				strings.Contains(err.Error(), "no Go files") {
				continue
			}
			return nil, err
		}
		record(pkg)
		if includeTests {
			xt, err := loader.LoadXTest(ip)
			if err != nil {
				return nil, err
			}
			if xt != nil {
				record(xt)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		return a.pos.Line < b.pos.Line
	})
	return out, nil
}

// auditProblem explains why a suppression fails the audit, or returns "".
func auditProblem(e auditEntry, known map[string]bool) string {
	switch {
	case e.analyzer == "":
		return "missing analyzer name"
	case !known[e.analyzer]:
		return fmt.Sprintf("unknown analyzer %q", e.analyzer)
	case !e.justified:
		return "missing reason"
	}
	return ""
}

// runAudit prints the full suppression inventory and fails if any directive
// lacks a reason or names an analyzer this binary doesn't ship: a waiver
// nobody can attribute or re-evaluate is lint debt, not a decision.
func runAudit(patterns []string, includeTests bool) int {
	entries, err := collectSuppressions(patterns, includeTests)
	if err != nil {
		log.Fatal(err)
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	cwd, _ := os.Getwd()
	bad := 0
	for _, e := range entries {
		loc := fmt.Sprintf("%s:%d", relToCwd(cwd, e.pos.Filename), e.pos.Line)
		if problem := auditProblem(e, known); problem != "" {
			bad++
			fmt.Printf("%s: INVALID (%s): //ppalint:allow %s %s\n", loc, problem, e.analyzer, e.reason)
			continue
		}
		fmt.Printf("%s: %s: %s\n", loc, e.analyzer, e.reason)
	}
	fmt.Printf("%d suppression(s), %d invalid\n", len(entries), bad)
	if bad > 0 {
		return 1
	}
	return 0
}

// analyze runs every analyzer over one package, splits the results with the
// //ppalint:allow filter (suppressed findings are kept, flagged, for the JSON
// report), and reports malformed directives.
func analyze(pkg *load.Package) []diag {
	var out []diag
	add := func(name string, suppressed bool, ds []analysis.Diagnostic) {
		for _, d := range ds {
			out = append(out, diag{
				pos:        pkg.Fset.Position(d.Pos),
				analyzer:   name,
				message:    d.Message,
				suppressed: suppressed,
			})
		}
	}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
		}
		var ds []analysis.Diagnostic
		pass.Report = func(d analysis.Diagnostic) { ds = append(ds, d) }
		if _, err := a.Run(pass); err != nil {
			add(a.Name, false, []analysis.Diagnostic{{Pos: pkg.Files[0].Pos(), Message: err.Error()}})
			continue
		}
		kept, waived := analysis.Partition(pkg.Fset, pkg.Files, a.Name, ds)
		add(a.Name, false, kept)
		add(a.Name, true, waived)
	}
	add("ppalint", false, analysis.DirectiveDiagnostics(pkg.Fset, pkg.Files))
	return out
}

// findModule walks up from the working directory to go.mod and returns the
// module root, module path, and language version.
func findModule() (root, modulePath, goVersion string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					modulePath = strings.TrimSpace(rest)
				}
				if rest, ok := strings.CutPrefix(line, "go "); ok {
					goVersion = "go" + strings.TrimSpace(rest)
				}
			}
			if modulePath == "" {
				return "", "", "", fmt.Errorf("no module directive in %s/go.mod", dir)
			}
			return dir, modulePath, goVersion, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves ./dir and ./dir/... arguments to the relative
// package directories beneath the module root, skipping testdata, vendor,
// hidden, and underscore directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	var candidates []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo := false
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if hasGo {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			candidates = append(candidates, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(candidates)

	match := func(rel string) bool {
		for _, p := range patterns {
			p = strings.TrimPrefix(p, "./")
			if p == "..." || p == "." && rel == "." {
				return true
			}
			if p == rel {
				return true
			}
			if prefix, ok := strings.CutSuffix(p, "/..."); ok {
				if prefix == "." || rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					return true
				}
			}
		}
		return false
	}
	var out []string
	for _, rel := range candidates {
		if match(filepath.ToSlash(rel)) {
			out = append(out, rel)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
