// Command ppalint runs the repo's custom determinism and numerical-safety
// analyzers (internal/analysis/...). It supports two modes:
//
//	go run ./cmd/ppalint ./...          # standalone, loads packages from source
//	go vet -vettool=$(which ppalint) ./...  # driven by the go command
//
// The vettool mode implements the same command-line protocol as
// x/tools/go/analysis/unitchecker (-V=full, -flags, and a JSON .cfg file
// per compilation unit) without depending on x/tools: builds run in
// hermetic environments with no module proxy, so the driver is built on
// go/importer and go/types alone. In vettool mode type information comes
// from the compiler's export data handed over by the go command; in
// standalone mode packages are type-checked from source.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ppatuner/internal/analysis"
	"ppatuner/internal/analysis/load"
	"ppatuner/internal/analysis/maporder"
	"ppatuner/internal/analysis/mustcheck"
	"ppatuner/internal/analysis/nodeterminism"
	"ppatuner/internal/analysis/parclosure"
)

var analyzers = []*analysis.Analyzer{
	nodeterminism.Analyzer,
	maporder.Analyzer,
	mustcheck.Analyzer,
	parclosure.Analyzer,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ppalint: ")

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	_ = flag.Bool("json", false, "accepted for go vet compatibility (ignored)")
	_ = flag.Int("c", -1, "accepted for go vet compatibility (ignored)")
	noTests := flag.Bool("notests", false, "standalone mode: skip _test.go files and external test packages")
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	if len(args) > 0 && args[0] == "help" {
		help()
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, !*noTests))
}

func help() {
	fmt.Println("ppalint enforces the determinism and numerical-safety invariants of this repo.")
	fmt.Println("Usage: ppalint [./pattern...]   or   go vet -vettool=$(command -v ppalint) ./...")
	for _, a := range analyzers {
		fmt.Printf("\n%s:\n%s\n", a.Name, a.Doc)
	}
	fmt.Println("\nSuppressions: //ppalint:allow <analyzer> <justification> on the flagged line")
	fmt.Println("or the line above. The justification is mandatory; unjustified directives")
	fmt.Println("are themselves reported.")
}

// ---- go vet -vettool protocol --------------------------------------------

// versionFlag implements -V=full: the go command fingerprints the tool
// binary to key its vet cache, expecting the exact shape below.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// unitConfig mirrors the JSON compilation-unit description the go command
// writes next to each package it vets (x/tools unitchecker.Config).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := newInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		log.Fatal(err)
	}

	var diags []diag
	if !cfg.VetxOnly {
		diags = analyze(&load.Package{PkgPath: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info})
	}
	if code := writeVetx(cfg); code != 0 {
		return code
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.pos, d.analyzer, d.message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeVetx persists the (empty) facts file the go command expects; ppalint
// analyzers are factless, but the file must exist for caching.
func writeVetx(cfg *unitConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

// ---- standalone mode ------------------------------------------------------

type diag struct {
	pos      token.Position
	analyzer string
	message  string
}

func runStandalone(patterns []string, includeTests bool) int {
	root, modulePath, goVersion, err := findModule()
	if err != nil {
		log.Fatal(err)
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		log.Fatal(err)
	}
	loader := &load.Loader{
		GoVersion:    goVersion,
		IncludeTests: includeTests,
		Resolve: func(importPath string) (string, bool) {
			if importPath == modulePath {
				return root, true
			}
			if rest, ok := strings.CutPrefix(importPath, modulePath+"/"); ok {
				return filepath.Join(root, filepath.FromSlash(rest)), true
			}
			return "", false
		},
	}

	var all []diag
	failed := false
	for _, rel := range dirs {
		ip := modulePath
		if rel != "." {
			ip = modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(ip)
		if err != nil {
			if strings.Contains(err.Error(), "no buildable Go source files") ||
				strings.Contains(err.Error(), "no Go files") {
				continue
			}
			log.Print(err)
			failed = true
			continue
		}
		all = append(all, analyze(pkg)...)
		if includeTests {
			xt, err := loader.LoadXTest(ip)
			if err != nil {
				log.Print(err)
				failed = true
				continue
			}
			if xt != nil {
				all = append(all, analyze(xt)...)
			}
		}
	}

	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.message < b.message
	})
	cwd, _ := os.Getwd()
	for _, d := range all {
		name := d.pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.pos.Line, d.pos.Column, d.analyzer, d.message)
	}
	if failed {
		return 2
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// analyze runs every analyzer over one package, applies the
// //ppalint:allow suppression filter, and reports malformed directives.
func analyze(pkg *load.Package) []diag {
	var out []diag
	add := func(name string, ds []analysis.Diagnostic) {
		for _, d := range ds {
			out = append(out, diag{pos: pkg.Fset.Position(d.Pos), analyzer: name, message: d.Message})
		}
	}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
		}
		var ds []analysis.Diagnostic
		pass.Report = func(d analysis.Diagnostic) { ds = append(ds, d) }
		if _, err := a.Run(pass); err != nil {
			add(a.Name, []analysis.Diagnostic{{Pos: pkg.Files[0].Pos(), Message: err.Error()}})
			continue
		}
		add(a.Name, analysis.Filter(pkg.Fset, pkg.Files, a.Name, ds))
	}
	add("ppalint", analysis.DirectiveDiagnostics(pkg.Fset, pkg.Files))
	return out
}

// findModule walks up from the working directory to go.mod and returns the
// module root, module path, and language version.
func findModule() (root, modulePath, goVersion string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					modulePath = strings.TrimSpace(rest)
				}
				if rest, ok := strings.CutPrefix(line, "go "); ok {
					goVersion = "go" + strings.TrimSpace(rest)
				}
			}
			if modulePath == "" {
				return "", "", "", fmt.Errorf("no module directive in %s/go.mod", dir)
			}
			return dir, modulePath, goVersion, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves ./dir and ./dir/... arguments to the relative
// package directories beneath the module root, skipping testdata, vendor,
// hidden, and underscore directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	var candidates []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo := false
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if hasGo {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			candidates = append(candidates, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(candidates)

	match := func(rel string) bool {
		for _, p := range patterns {
			p = strings.TrimPrefix(p, "./")
			if p == "..." || p == "." && rel == "." {
				return true
			}
			if p == rel {
				return true
			}
			if prefix, ok := strings.CutSuffix(p, "/..."); ok {
				if prefix == "." || rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					return true
				}
			}
		}
		return false
	}
	var out []string
	for _, rel := range candidates {
		if match(filepath.ToSlash(rel)) {
			out = append(out, rel)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
