// Command tables regenerates the paper's Table 2 (Scenario One: the whole
// performance comparison on Target1) and Table 3 (Scenario Two: Target2),
// running all five tuners over the three objective spaces and averaging over
// seeds. Each (space × method × seed) cell is an independent work unit:
// -workers runs units concurrently (bit-identical output for any value) and
// -checkpoint persists completed cells plus mid-run tuner state so a killed
// regeneration resumes with -resume instead of restarting.
//
// Usage:
//
//	tables [-table 2|3|both] [-seeds N|s1,s2,...] [-workers N]
//	       [-coordinator ADDR [-workers-remote N] [-lease D]]
//	       [-checkpoint FILE [-resume]] [-json FILE]
//	       [-outage PERIOD/DOWN] [-breaker N] [-max-outage D]
//
// -seeds takes either a count N (averages over seeds 1..N) or an explicit
// comma-separated seed list such as 1,2,5 (a trailing comma forces list
// form: "7," runs just seed 7). -json writes the machine-readable
// TABLES.json document alongside the text tables.
//
// The outage flags rehearse campaign resilience: -outage injects correlated
// downtime windows (a DOWN-long outage inside every PERIOD stripe) into the
// evaluation path, and -breaker arms a shared circuit breaker in park mode —
// cells that hit the open breaker are parked (persisted in -checkpoint) and
// requeued after recovery, bounded by -max-outage, so the regenerated
// tables are bit-identical to an outage-free run.
//
// -coordinator switches from in-process workers to distributed ones: the
// command listens on ADDR, leases units to remote ppaworker processes
// (start them with ppaworker -connect ADDR), and merges their streamed
// results — the output stays byte-identical to the in-process run. The
// evaluation-path flags (-outage, -breaker) then belong on the workers,
// not here. See also the ppacoord command, which adds local worker
// spawning and kill schedules.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ppatuner"
	"ppatuner/internal/eval"
	"ppatuner/internal/shard"
	"ppatuner/internal/shard/transport"
)

// tablesDoc is the TABLES.json document: everything a downstream consumer
// (the nightly CI pipeline, dashboards) needs to interpret the numbers.
type tablesDoc struct {
	GoVersion string             `json:"go_version"`
	Timestamp string             `json:"timestamp"`
	Seeds     []int64            `json:"seeds"`
	Workers   int                `json:"workers"`
	Tables    []eval.TableReport `json:"tables"`
}

func main() {
	table := flag.String("table", "both", "which table to regenerate: 2 | 3 | both")
	seedSpec := flag.String("seeds", "3", "seed count N (averages seeds 1..N) or explicit comma-separated seed list")
	workers := flag.Int("workers", 1, "table cells to run concurrently (bit-identical output for any value)")
	ckptPath := flag.String("checkpoint", "", "campaign checkpoint file: completed cells and mid-run tuner state persist there")
	resume := flag.Bool("resume", false, "continue from an existing -checkpoint file (without it, a pre-existing file is an error)")
	jsonPath := flag.String("json", "", "write the machine-readable TABLES.json document to this path")
	outageSpec := flag.String("outage", "", "inject correlated downtime windows: PERIOD/DOWN (e.g. 60s/10s), empty or \"off\" disables")
	breakerN := flag.Int("breaker", 0, "circuit breaker: trip after N consecutive transient failures and park affected cells (0 disables; outage-marked failures trip immediately)")
	maxOutage := flag.Duration("max-outage", 5*time.Minute, "abort when one outage episode keeps the breaker open longer than this")
	coordAddr := flag.String("coordinator", "", "distribute units to remote workers: TCP address to accept ppaworker -connect dials on")
	workersRemote := flag.Int("workers-remote", 1, "remote workers expected on -coordinator (recorded in TABLES.json)")
	leaseTTL := flag.Duration("lease", 30*time.Second, "with -coordinator: lease TTL before a silent worker loses its unit")
	gpFlag := flag.String("gp", "exact", "PPATuner surrogate: exact | sparse | sparse:<m> (inducing-point approximation, O(n·m²) per refit)")
	flag.Parse()

	seeds, err := eval.ParseSeeds(*seedSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(2)
	}
	gpSpec, err := ppatuner.ParseGPSpec(*gpFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(2)
	}
	sched, err := ppatuner.ParseOutageSchedule(*outageSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(2)
	}
	if sched.Enabled() && *breakerN <= 0 {
		fmt.Fprintln(os.Stderr, "tables: note: -outage without -breaker burns retry budgets during downtime; pass -breaker to park and requeue cells instead")
	}

	// Outage middleware: chaos injection (correlated windows on the shared
	// virtual timeline) under the resilience layer, which shares one
	// park-mode breaker with the campaign scheduler.
	flog := &ppatuner.FailureLog{}
	var inj *ppatuner.ChaosInjector
	if sched.Enabled() {
		inj, err = ppatuner.NewChaos(ppatuner.ChaosOptions{Seed: seeds[0], Outage: sched})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(2)
		}
	}
	var brk *ppatuner.CircuitBreaker
	if *breakerN > 0 {
		brk = ppatuner.NewCircuitBreaker(ppatuner.CircuitBreakerOptions{
			Threshold: *breakerN,
			MaxOutage: *maxOutage,
			Park:      true,
			Log:       flog,
		})
	}
	var wrap func(ppatuner.Evaluator) ppatuner.Evaluator
	if inj != nil || brk != nil {
		wrap = func(ev ppatuner.Evaluator) ppatuner.Evaluator {
			if inj != nil {
				ev = inj.Wrap(ev)
			}
			re, err := ppatuner.WrapEvaluator(nil, ev, ppatuner.ResilientOptions{
				Policy:  ppatuner.PolicySkip,
				Seed:    seeds[0],
				Breaker: brk,
				Log:     flog,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "tables: %v\n", err)
				os.Exit(2)
			}
			return re.Evaluate
		}
	}

	// Distributed mode: listen for remote workers and lease units to them
	// instead of running in-process. The evaluation-path middleware above
	// runs inside workers, so the local wrap is left unused.
	var distConns <-chan shard.Conn
	if *coordAddr != "" {
		if sched.Enabled() || *breakerN > 0 {
			fmt.Fprintln(os.Stderr, "tables: note: with -coordinator, -outage and -breaker belong on the ppaworker command line; ignoring them here")
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		conns, closeL, addr, err := transport.Listen(ctx, *coordAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		defer closeL()
		distConns = conns
		fmt.Fprintf(os.Stderr, "tables: accepting workers on %s (expecting %d; start them with: ppaworker -connect %s)\n", addr, *workersRemote, addr)
	}

	var ck *ppatuner.CampaignCheckpoint
	resumedCells := 0
	if *ckptPath != "" {
		if !*resume {
			if fi, err := os.Stat(*ckptPath); err == nil && fi.Size() > 0 {
				fmt.Fprintf(os.Stderr, "tables: checkpoint %s already exists; pass -resume to continue it or remove the file\n", *ckptPath)
				os.Exit(2)
			}
		}
		ck, err = ppatuner.LoadCampaignCheckpoint(*ckptPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		resumedCells = ck.Cells()
	}

	var reports []eval.TableReport
	run := func(name string, mk func() (*ppatuner.Scenario, error)) {
		t0 := time.Now()
		s, err := mk()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("— %s (benchmark ready in %v) —\n", name, time.Since(t0).Round(time.Second))
		t0 = time.Now()
		c := &ppatuner.Campaign{
			Scenario: s, Seeds: seeds, Workers: *workers, Checkpoint: ck,
			Breaker: brk,
			Opts:    ppatuner.HarnessRunOpts{Wrap: wrap, GP: gpSpec},
		}
		var tbl *ppatuner.HarnessTable
		if distConns != nil {
			co, cerr := shard.New(shard.Options{Campaign: c, LeaseTTL: *leaseTTL, Log: flog})
			if cerr != nil {
				fmt.Fprintf(os.Stderr, "tables: %v\n", cerr)
				os.Exit(1)
			}
			tbl, err = co.Run(context.Background(), distConns)
			if err == nil {
				st := co.Stats()
				fmt.Fprintf(os.Stderr, "tables: leases: %d granted, %d expired, %d workers lost, %d zombie results rejected\n",
					st.Granted, st.Expired, st.WorkersLost, st.ZombieResults)
			}
		} else {
			tbl, err = c.Run()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("(computed in %v over %d seed(s), %d worker(s))\n\n", time.Since(t0).Round(time.Second), len(seeds), *workers)
		reports = append(reports, tbl.Report(name, seeds))
	}

	if *table == "2" || *table == "both" {
		run("Table 2", ppatuner.ScenarioOne)
	}
	if *table == "3" || *table == "both" {
		run("Table 3", ppatuner.ScenarioTwo)
	}

	if ck != nil {
		replayed, fresh := ck.Stats()
		fmt.Printf("checkpoint: resumed %d completed cells, replayed %d observations, %d fresh evaluations (now %d cells in %s)\n",
			resumedCells, replayed, fresh, ck.Cells(), *ckptPath)
	}
	if brk != nil {
		outages := 0
		if inj != nil {
			outages = inj.Counts().Outage
		}
		fmt.Printf("outage: schedule %s, %d outage failures injected, %d breaker trip(s), failures: %s\n",
			sched, outages, brk.Trips(), flog.Summary())
	}

	if *jsonPath != "" {
		docWorkers := *workers
		if distConns != nil {
			docWorkers = *workersRemote
		}
		doc := tablesDoc{
			GoVersion: runtime.Version(),
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			Seeds:     seeds,
			Workers:   docWorkers,
			Tables:    reports,
		}
		data, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
