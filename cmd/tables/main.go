// Command tables regenerates the paper's Table 2 (Scenario One: the whole
// performance comparison on Target1) and Table 3 (Scenario Two: Target2),
// running all five tuners over the three objective spaces and averaging over
// seeds.
//
// Usage:
//
//	tables [-table 2|3|both] [-seeds N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ppatuner"
)

func main() {
	table := flag.String("table", "both", "which table to regenerate: 2 | 3 | both")
	nSeeds := flag.Int("seeds", 3, "number of seeds to average over")
	flag.Parse()

	seeds := make([]int64, *nSeeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	run := func(name string, mk func() (*ppatuner.Scenario, error)) {
		t0 := time.Now()
		s, err := mk()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("— %s (benchmark ready in %v) —\n", name, time.Since(t0).Round(time.Second))
		t0 = time.Now()
		tbl, err := ppatuner.BuildTable(s, seeds)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("(computed in %v over %d seed(s))\n\n", time.Since(t0).Round(time.Second), len(seeds))
	}

	if *table == "2" || *table == "both" {
		run("Table 2", ppatuner.ScenarioOne)
	}
	if *table == "3" || *table == "both" {
		run("Table 3", ppatuner.ScenarioTwo)
	}
}
