// Command ppaserved is the tuning-job daemon: internal/serve behind a TCP
// listener. Clients submit tuning jobs over the JSON API, watch per-unit
// progress over SSE (or the ?poll=1 long-poll fallback), and fetch golden
// versus learned Pareto fronts per job.
//
//	ppaserved -state /var/lib/ppatuner -addr 127.0.0.1:8324
//
// All job state is persisted under -state: the process can be killed —
// gracefully or with SIGKILL — and restarted against the same directory, and
// every interrupted job resumes to byte-identical results. SIGINT/SIGTERM
// drain gracefully: running campaigns stop at the next evaluator call and
// park, subscribed event streams get a terminal shutdown event, and the
// HTTP listener closes only after in-flight requests finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ppatuner/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8324", "listen address")
	state := flag.String("state", "", "durable state directory (required)")
	maxActive := flag.Int("max-active", 1, "concurrent campaigns")
	workers := flag.Int("workers", 1, "default per-campaign unit concurrency")
	rate := flag.Float64("rate", 0, "per-client submissions per second (0 disables rate limiting)")
	burst := flag.Int("burst", 5, "per-client submission burst")
	retain := flag.Duration("retain", 0, "garbage-collect done/failed/cancelled jobs and their checkpoints after this long in a terminal state (0 keeps everything)")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()
	if *state == "" {
		fmt.Fprintln(os.Stderr, "ppaserved: -state is required")
		flag.Usage()
		os.Exit(2)
	}
	log.SetFlags(0)
	cfg := serve.Config{
		StateDir:    *state,
		MaxActive:   *maxActive,
		UnitWorkers: *workers,
		Rate:        *rate,
		Burst:       *burst,
		Retain:      *retain,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	if err := run(cfg, *addr); err != nil {
		log.Fatalf("ppaserved: %v", err)
	}
}

func run(cfg serve.Config, addr string) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("ppaserved: serving on %s (state %s)", addr, cfg.StateDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Shutdown()
		return err
	case got := <-sig:
		log.Printf("ppaserved: %v: draining (campaigns park at the next evaluator call)", got)
		// Park campaigns and terminate event streams first, then close the
		// listener: SSE handlers exit on the drain signal, so the HTTP
		// shutdown's wait for in-flight requests completes promptly.
		srv.Shutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("http shutdown: %w", err)
		}
		log.Printf("ppaserved: drained; state is durable under %s", cfg.StateDir)
		return nil
	}
}
